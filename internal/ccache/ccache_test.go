package ccache

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"macc/internal/core"
	"macc/internal/rtl"
	"macc/internal/rtl/codec"
)

// prog builds a tiny valid program whose printed size scales with pad.
func prog(t *testing.T, name string, pad int) *rtl.Program {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(r0) {\nentry:\n", name)
	for i := 0; i < pad; i++ {
		fmt.Fprintf(&sb, "\tr%d = r0 + %d\n", i+1, i)
	}
	fmt.Fprintf(&sb, "\tret r0\n}\n")
	p, err := rtl.ParseProgram(sb.String())
	if err != nil {
		t.Fatalf("prog: %v", err)
	}
	return p
}

func flatOf(t *testing.T, p *rtl.Program) *rtl.FlatProgram {
	t.Helper()
	fp, err := rtl.Flatten(p)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	return fp
}

func entryFor(t *testing.T, name string, pad int) Entry {
	return Entry{
		Flat:     flatOf(t, prog(t, name, pad)),
		Machine:  "alpha",
		Reports:  []core.LoopReport{{Header: "loop", Fn: name, Applied: true, Reason: "test"}},
		Unrolled: map[string]int{name: 4},
	}
}

// mustPrint materializes the entry and prints it.
func mustPrint(t *testing.T, e Entry) string {
	t.Helper()
	p, err := e.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return p.String()
}

func TestKeyOfDistinctAndStable(t *testing.T) {
	base := KeyOf("src", "cfg", "alpha")
	if base != KeyOf("src", "cfg", "alpha") {
		t.Fatal("KeyOf not deterministic")
	}
	for _, k := range []Key{
		KeyOf("src2", "cfg", "alpha"),
		KeyOf("src", "cfg2", "alpha"),
		KeyOf("src", "cfg", "m88100"),
		// Length prefixing: moving a byte across a field boundary must
		// change the key.
		KeyOf("srcc", "fg", "alpha"),
	} {
		if k == base {
			t.Fatalf("key collision: %s", k)
		}
	}
}

func TestMemHitReturnsSharedFlatAndMaterializeIsolates(t *testing.T) {
	c := New(Options{})
	key := KeyOf("a", "b", "c")
	c.Put(key, entryFor(t, "f", 2))

	e, ok := c.Get(key)
	if !ok {
		t.Fatal("expected memory hit")
	}
	if got := c.Metrics().CounterValue("ccache.mem_hits"); got != 1 {
		t.Fatalf("mem_hits = %d", got)
	}
	// A hit hands out the shared flat image — no clone-on-hit copies.
	e2, _ := c.Get(key)
	if e2.Flat != e.Flat {
		t.Fatal("mem hit did not share the flat image")
	}
	// Materialize builds a private pointer graph each time.
	m1, err := e.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := e.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 || m1.Fns[0] == m2.Fns[0] {
		t.Fatal("Materialize returned shared structure")
	}
	want := m2.String()
	// Mutating one materialization must not poison the cached image.
	m1.Fns[0].Blocks[0].Instrs[0].Disp = 999
	e3, _ := c.Get(key)
	if got := mustPrint(t, e3); got != want {
		t.Fatal("cached image was mutated through a materialization")
	}
	if r := e.CloneReports(); &r[0] == &e.Reports[0] {
		t.Fatal("CloneReports shares backing array")
	}
	u := e.CloneUnrolled()
	u["f"] = 99
	if e.Unrolled["f"] != 4 {
		t.Fatal("CloneUnrolled shares map")
	}
}

func TestLRUEvictionUnderTinyBudget(t *testing.T) {
	c := New(Options{MemBudget: 2048})
	k1, k2, k3 := KeyOf("1", "", ""), KeyOf("2", "", ""), KeyOf("3", "", "")
	c.Put(k1, entryFor(t, "f1", 20))
	c.Put(k2, entryFor(t, "f2", 20))
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 evicted too early")
	}
	// k1 is now most recent, so inserting k3 must evict k2.
	c.Put(k3, entryFor(t, "f3", 20))
	if _, ok := c.Get(k2); ok {
		t.Fatal("expected k2 evicted")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("expected k1 retained (recently used)")
	}
	if _, ok := c.Get(k3); !ok {
		t.Fatal("expected k3 retained (newest)")
	}
	if ev := c.Metrics().CounterValue("ccache.evictions"); ev == 0 {
		t.Fatal("evictions counter did not move")
	}
	if c.Bytes() > 2048 && c.Len() > 1 {
		t.Fatalf("budget not enforced: %d bytes in %d entries", c.Bytes(), c.Len())
	}
	if err := c.checkAccounting(); err != nil {
		t.Fatal(err)
	}
	// A single entry larger than the budget stays resident (the cache
	// always keeps the most recent compile).
	big := New(Options{MemBudget: 10})
	big.Put(k1, entryFor(t, "f", 50))
	if _, ok := big.Get(k1); !ok {
		t.Fatal("most recent entry must survive even over budget")
	}
}

// TestAccountingChargesEncodedSize pins the LRU cost model: an entry's
// charge is the actual encoded envelope size plus fixed overhead, and the
// cache-wide byte counter stays equal to the sum of live entry charges
// through puts, refreshing overwrites of different sizes, and evictions.
func TestAccountingChargesEncodedSize(t *testing.T) {
	c := New(Options{})
	key := KeyOf("acct", "", "")
	e := entryFor(t, "f", 8)
	data, err := EncodeEntry(key, e)
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key, e)
	if got, want := c.Bytes(), int64(len(data))+entryOverhead; got != want {
		t.Fatalf("charged %d bytes, want encoded %d + overhead %d", got, len(data), entryOverhead)
	}
	// Overwriting the key with a smaller entry must re-charge, not leak the
	// old size.
	small := entryFor(t, "f", 1)
	smallData, err := EncodeEntry(key, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(smallData) >= len(data) {
		t.Fatalf("fixture broken: %d >= %d", len(smallData), len(data))
	}
	c.Put(key, small)
	if got, want := c.Bytes(), int64(len(smallData))+entryOverhead; got != want {
		t.Fatalf("after overwrite charged %d, want %d", got, want)
	}
	if err := c.checkAccounting(); err != nil {
		t.Fatal(err)
	}
	// Churn a tiny-budget cache and re-verify the invariant after the dust
	// settles: evictions must subtract exactly what insertion added.
	tiny := New(Options{MemBudget: 1500})
	for i := 0; i < 40; i++ {
		tiny.Put(KeyOf(fmt.Sprintf("k%d", i), "", ""), entryFor(t, fmt.Sprintf("f%d", i), i%7))
		if err := tiny.checkAccounting(); err != nil {
			t.Fatalf("after put %d: %v", i, err)
		}
	}
	if tiny.Metrics().CounterValue("ccache.evictions") == 0 {
		t.Fatal("churn produced no evictions")
	}
}

func TestDiskTierRoundTripAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("src", "cfg", "alpha")
	want := entryFor(t, "f", 3)

	a := New(Options{Dir: dir})
	a.Put(key, want)

	// A fresh cache (new "process") must hit the disk tier and promote.
	b := New(Options{Dir: dir})
	got, ok := b.Get(key)
	if !ok {
		t.Fatal("expected disk hit")
	}
	if mustPrint(t, got) != mustPrint(t, want) {
		t.Fatalf("disk round trip not lossless:\n%s\nvs\n%s", mustPrint(t, got), mustPrint(t, want))
	}
	if len(got.Reports) != 1 || got.Reports[0].Reason != "test" || got.Unrolled["f"] != 4 {
		t.Fatalf("side records lost: %+v %+v", got.Reports, got.Unrolled)
	}
	if b.Metrics().CounterValue("ccache.disk_hits") != 1 {
		t.Fatal("disk_hits counter did not move")
	}
	// Promoted: second Get is a memory hit.
	if _, ok := b.Get(key); !ok || b.Metrics().CounterValue("ccache.mem_hits") != 1 {
		t.Fatal("disk hit was not promoted to the memory tier")
	}
}

// reseal recomputes the envelope's FNV-64a trailer over body and appends it,
// letting tests craft envelopes that pass the checksum but fail a deeper
// validation layer.
func reseal(body []byte) []byte {
	h := fnv.New64a()
	h.Write(body)
	return binary.LittleEndian.AppendUint64(body, h.Sum64())
}

// forgeEnvelope builds a checksum-valid envelope with the given metadata and
// program payload bytes.
func forgeEnvelope(t *testing.T, meta entryMeta, progBytes []byte) []byte {
	t.Helper()
	mb, err := json.Marshal(meta)
	if err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), envelopeMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(mb)))
	buf = append(buf, mb...)
	buf = binary.AppendUvarint(buf, uint64(len(progBytes)))
	buf = append(buf, progBytes...)
	return reseal(buf)
}

func TestDiskCorruptTruncatedAndStaleAreMisses(t *testing.T) {
	corrupt := func(name string, f func(t *testing.T, key Key, data []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			key := KeyOf("src"+name, "cfg", "alpha")
			a := New(Options{Dir: dir})
			a.Put(key, entryFor(t, "f", 3))
			path := a.path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if out := f(t, key, data); out != nil {
				if err := os.WriteFile(path, out, 0o666); err != nil {
					t.Fatal(err)
				}
			}
			b := New(Options{Dir: dir})
			if _, ok := b.Get(key); ok {
				t.Fatal("invalid disk entry served as a hit")
			}
			if b.Metrics().CounterValue("ccache.disk_invalid") != 1 {
				t.Fatal("disk_invalid counter did not move")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("invalid entry not removed")
			}
			if b.Metrics().CounterValue("ccache.misses") != 1 {
				t.Fatal("miss not counted")
			}
		})
	}
	corrupt("truncated", func(_ *testing.T, _ Key, data []byte) []byte { return data[:len(data)/2] })
	corrupt("garbage", func(_ *testing.T, _ Key, _ []byte) []byte { return []byte("{not an envelope") })
	corrupt("checksum", func(_ *testing.T, _ Key, data []byte) []byte {
		data[len(data)/2] ^= 0x01
		return data
	})
	corrupt("schema-bump", func(t *testing.T, key Key, _ []byte) []byte {
		// A checksum-valid envelope written under another schema version
		// must be rejected, so bumping SchemaVersion invalidates stale
		// entries even on a key collision.
		fp := flatOf(t, prog(t, "f", 3))
		return forgeEnvelope(t, entryMeta{
			Schema: "macc-ccache/v0",
			Key:    key.String(),
		}, codec.EncodeProgram(fp))
	})
	corrupt("key-mismatch", func(t *testing.T, _ Key, _ []byte) []byte {
		fp := flatOf(t, prog(t, "f", 3))
		return forgeEnvelope(t, entryMeta{
			Schema: SchemaVersion,
			Key:    KeyOf("someone-else", "cfg", "alpha").String(),
		}, codec.EncodeProgram(fp))
	})
	corrupt("bad-program", func(t *testing.T, key Key, _ []byte) []byte {
		// Envelope intact (valid JSON, matching outer checksum) but the
		// program bytes fail the codec's structural decode: the
		// revalidation gate must turn it into a miss.
		return forgeEnvelope(t, entryMeta{
			Schema: SchemaVersion,
			Key:    key.String(),
		}, []byte("MFP1 junk that is not a flat program"))
	})
}

// TestDiskSchemaMigrationGC seeds a cache directory with old-schema files —
// a v1-era layout with no schema marker — and verifies that a new cache GC's
// them at startup, counts them, writes the marker, and serves consistent
// misses afterwards.
func TestDiskSchemaMigrationGC(t *testing.T) {
	dir := t.TempDir()
	// Simulate a v1 directory: sharded JSON text entries, no marker file.
	old := []string{
		filepath.Join(dir, "ab", "abcd0123.json"),
		filepath.Join(dir, "ab", "abcd4567.json"),
		filepath.Join(dir, "cd", "cdef0123.json"),
	}
	for _, p := range old {
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(`{"schema":"macc-ccache/v1","rtl":"func f() {}"}`), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	journal := filepath.Join(dir, "journal")
	if err := os.WriteFile(journal, []byte("intent ab/.x.tmp1\n"), 0o666); err != nil {
		t.Fatal(err)
	}

	c := New(Options{Dir: dir})
	if got := c.Metrics().CounterValue("ccache.schema_evicted"); got != int64(len(old)) {
		t.Fatalf("schema_evicted = %d, want %d", got, len(old))
	}
	for _, p := range old {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("stale entry survived migration: %s", p)
		}
	}
	marker, err := os.ReadFile(filepath.Join(dir, "schema"))
	if err != nil || strings.TrimSpace(string(marker)) != SchemaVersion {
		t.Fatalf("schema marker not written: %q err=%v", marker, err)
	}
	// Old keys are misses (and counted as such), never errors.
	if _, ok := c.Get(KeyOf("anything", "cfg", "alpha")); ok {
		t.Fatal("migrated cache produced a hit from nowhere")
	}
	if c.Metrics().CounterValue("ccache.misses") != 1 {
		t.Fatal("miss not counted after migration")
	}
	// The cache still works end to end after migration.
	key := KeyOf("fresh", "cfg", "alpha")
	c.Put(key, entryFor(t, "f", 2))
	d := New(Options{Dir: dir})
	if d.Metrics().CounterValue("ccache.schema_evicted") != 0 {
		t.Fatal("second startup re-evicted a current-schema directory")
	}
	if _, ok := d.Get(key); !ok {
		t.Fatal("current-schema entry lost across restart")
	}
}

func TestSingleflightDedupIsShared(t *testing.T) {
	c := New(Options{})
	key := KeyOf("src", "cfg", "alpha")

	const waiters = 7
	started := make(chan struct{})
	release := make(chan struct{})
	joined := make(chan struct{}, waiters)
	c.onWait = func() { joined <- struct{}{} }

	computes := 0
	var wg sync.WaitGroup
	results := make([]Entry, waiters+1)
	leaderErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, hit, err := c.GetOrCompute(key, func() (Entry, error) {
			computes++
			close(started)
			<-release
			return entryFor(t, "f", 2), nil
		})
		if hit {
			err = fmt.Errorf("leader reported hit")
		}
		leaderErr <- err
		results[0] = e
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := c.GetOrCompute(key, func() (Entry, error) {
				t.Error("waiter computed")
				return Entry{}, nil
			})
			if err != nil || !hit {
				t.Errorf("waiter %d: hit=%v err=%v", i, hit, err)
			}
			results[i+1] = e
		}(i)
	}
	// Wait until every waiter has actually joined the flight, then let the
	// leader finish: the dedup count is deterministic.
	for i := 0; i < waiters; i++ {
		<-joined
	}
	close(release)
	wg.Wait()
	if err := <-leaderErr; err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times", computes)
	}
	if got := c.Metrics().CounterValue("ccache.dedup_waiters"); got != waiters {
		t.Fatalf("dedup_waiters = %d, want %d", got, waiters)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Flat != results[0].Flat {
			t.Fatalf("waiter %d got a different flat image", i)
		}
	}
}

func TestGetOrComputeErrorSharedNotStored(t *testing.T) {
	c := New(Options{Dir: t.TempDir()})
	key := KeyOf("bad", "cfg", "alpha")
	wantErr := fmt.Errorf("boom")
	_, hit, err := c.GetOrCompute(key, func() (Entry, error) { return Entry{}, wantErr })
	if hit || err != wantErr {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("errored compute was cached")
	}
}

func TestUncacheableReturnedButNotStored(t *testing.T) {
	c := New(Options{Dir: t.TempDir()})
	key := KeyOf("deg", "cfg", "alpha")
	e := entryFor(t, "f", 1)
	e.Uncacheable = true
	got, hit, err := c.GetOrCompute(key, func() (Entry, error) { return e, nil })
	if err != nil || hit || got.Flat == nil {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("uncacheable entry was stored")
	}
	if entries, _ := filepath.Glob(filepath.Join(c.dir, "*", "*.bin")); len(entries) != 0 {
		t.Fatalf("uncacheable entry written to disk: %v", entries)
	}
}

// TestConcurrentHitMissEvict hammers a tiny-budget, disk-backed cache from
// many goroutines mixing Get, Put, and GetOrCompute — run under -race in CI.
func TestConcurrentHitMissEvict(t *testing.T) {
	c := New(Options{MemBudget: 4096, Dir: t.TempDir()})
	keys := make([]Key, 8)
	progs := make([]*rtl.FlatProgram, len(keys))
	small := make([]*rtl.FlatProgram, len(keys))
	for i := range keys {
		keys[i] = KeyOf(fmt.Sprintf("src%d", i), "cfg", "alpha")
		progs[i] = flatOf(t, prog(t, fmt.Sprintf("f%d", i), 10+i))
		small[i] = flatOf(t, prog(t, fmt.Sprintf("f%d", i), 5))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ki := (g + i) % len(keys)
				k := keys[ki]
				switch i % 3 {
				case 0:
					c.Get(k)
				case 1:
					e, _, err := c.GetOrCompute(k, func() (Entry, error) {
						return Entry{Flat: progs[ki]}, nil
					})
					if err != nil || e.Flat == nil {
						t.Errorf("GetOrCompute: %v", err)
						return
					}
					if _, err := e.Materialize(); err != nil {
						t.Errorf("Materialize: %v", err)
						return
					}
				case 2:
					c.Put(k, Entry{Flat: small[ki]})
				}
			}
		}(g)
	}
	wg.Wait()
	if err := c.checkAccounting(); err != nil {
		t.Fatal(err)
	}
}
