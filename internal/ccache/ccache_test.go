package ccache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"macc/internal/core"
	"macc/internal/rtl"
)

// prog builds a tiny valid program whose printed size scales with pad.
func prog(t *testing.T, name string, pad int) *rtl.Program {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(r0) {\nentry:\n", name)
	for i := 0; i < pad; i++ {
		fmt.Fprintf(&sb, "\tr%d = r0 + %d\n", i+1, i)
	}
	fmt.Fprintf(&sb, "\tret r0\n}\n")
	p, err := rtl.ParseProgram(sb.String())
	if err != nil {
		t.Fatalf("prog: %v", err)
	}
	return p
}

func entryFor(t *testing.T, name string, pad int) Entry {
	p := prog(t, name, pad)
	return Entry{
		Program:  p,
		Machine:  "alpha",
		Reports:  []core.LoopReport{{Header: "loop", Fn: name, Applied: true, Reason: "test"}},
		Unrolled: map[string]int{name: 4},
	}
}

func TestKeyOfDistinctAndStable(t *testing.T) {
	base := KeyOf("src", "cfg", "alpha")
	if base != KeyOf("src", "cfg", "alpha") {
		t.Fatal("KeyOf not deterministic")
	}
	for _, k := range []Key{
		KeyOf("src2", "cfg", "alpha"),
		KeyOf("src", "cfg2", "alpha"),
		KeyOf("src", "cfg", "m88100"),
		// Length prefixing: moving a byte across a field boundary must
		// change the key.
		KeyOf("srcc", "fg", "alpha"),
	} {
		if k == base {
			t.Fatalf("key collision: %s", k)
		}
	}
}

func TestMemHitReturnsSharedEntryAndCloneIsolates(t *testing.T) {
	c := New(Options{})
	key := KeyOf("a", "b", "c")
	c.Put(key, entryFor(t, "f", 2))

	e, ok := c.Get(key)
	if !ok {
		t.Fatal("expected memory hit")
	}
	if got := c.Metrics().CounterValue("ccache.mem_hits"); got != 1 {
		t.Fatalf("mem_hits = %d", got)
	}
	clone := e.CloneProgram()
	if clone == e.Program || clone.Fns[0] == e.Program.Fns[0] {
		t.Fatal("CloneProgram returned shared structure")
	}
	if clone.String() != e.Program.String() {
		t.Fatal("clone prints differently")
	}
	// Mutating the clone must not poison the cached copy.
	clone.Fns[0].Blocks[0].Instrs[0].Disp = 999
	e2, _ := c.Get(key)
	if e2.Program.String() != e.Text && e2.Program.String() != e.Program.String() {
		t.Fatal("cached program was mutated through a clone")
	}
	if r := e.CloneReports(); &r[0] == &e.Reports[0] {
		t.Fatal("CloneReports shares backing array")
	}
	u := e.CloneUnrolled()
	u["f"] = 99
	if e.Unrolled["f"] != 4 {
		t.Fatal("CloneUnrolled shares map")
	}
}

func TestLRUEvictionUnderTinyBudget(t *testing.T) {
	c := New(Options{MemBudget: 2048})
	k1, k2, k3 := KeyOf("1", "", ""), KeyOf("2", "", ""), KeyOf("3", "", "")
	c.Put(k1, entryFor(t, "f1", 20))
	c.Put(k2, entryFor(t, "f2", 20))
	if _, ok := c.Get(k1); !ok {
		t.Fatal("k1 evicted too early")
	}
	// k1 is now most recent, so inserting k3 must evict k2.
	c.Put(k3, entryFor(t, "f3", 20))
	if _, ok := c.Get(k2); ok {
		t.Fatal("expected k2 evicted")
	}
	if _, ok := c.Get(k1); !ok {
		t.Fatal("expected k1 retained (recently used)")
	}
	if _, ok := c.Get(k3); !ok {
		t.Fatal("expected k3 retained (newest)")
	}
	if ev := c.Metrics().CounterValue("ccache.evictions"); ev == 0 {
		t.Fatal("evictions counter did not move")
	}
	if c.Bytes() > 2048 && c.Len() > 1 {
		t.Fatalf("budget not enforced: %d bytes in %d entries", c.Bytes(), c.Len())
	}
	// A single entry larger than the budget stays resident (the cache
	// always keeps the most recent compile).
	big := New(Options{MemBudget: 10})
	big.Put(k1, entryFor(t, "f", 50))
	if _, ok := big.Get(k1); !ok {
		t.Fatal("most recent entry must survive even over budget")
	}
}

func TestDiskTierRoundTripAcrossProcesses(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("src", "cfg", "alpha")
	want := entryFor(t, "f", 3)

	a := New(Options{Dir: dir})
	a.Put(key, want)

	// A fresh cache (new "process") must hit the disk tier and promote.
	b := New(Options{Dir: dir})
	got, ok := b.Get(key)
	if !ok {
		t.Fatal("expected disk hit")
	}
	if got.Program.String() != want.Program.String() {
		t.Fatalf("disk round trip not lossless:\n%s\nvs\n%s", got.Program, want.Program)
	}
	if len(got.Reports) != 1 || got.Reports[0].Reason != "test" || got.Unrolled["f"] != 4 {
		t.Fatalf("side records lost: %+v %+v", got.Reports, got.Unrolled)
	}
	if b.Metrics().CounterValue("ccache.disk_hits") != 1 {
		t.Fatal("disk_hits counter did not move")
	}
	// Promoted: second Get is a memory hit.
	if _, ok := b.Get(key); !ok || b.Metrics().CounterValue("ccache.mem_hits") != 1 {
		t.Fatal("disk hit was not promoted to the memory tier")
	}
}

func TestDiskCorruptTruncatedAndStaleAreMisses(t *testing.T) {
	corrupt := func(name string, f func(path string, data []byte) []byte) {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			key := KeyOf("src"+name, "cfg", "alpha")
			a := New(Options{Dir: dir})
			a.Put(key, entryFor(t, "f", 3))
			path := a.path(key)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if out := f(path, data); out != nil {
				if err := os.WriteFile(path, out, 0o666); err != nil {
					t.Fatal(err)
				}
			}
			b := New(Options{Dir: dir})
			if _, ok := b.Get(key); ok {
				t.Fatal("invalid disk entry served as a hit")
			}
			if b.Metrics().CounterValue("ccache.disk_invalid") != 1 {
				t.Fatal("disk_invalid counter did not move")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("invalid entry not removed")
			}
			if b.Metrics().CounterValue("ccache.misses") != 1 {
				t.Fatal("miss not counted")
			}
		})
	}
	corrupt("truncated", func(_ string, data []byte) []byte { return data[:len(data)/2] })
	corrupt("garbage", func(_ string, _ []byte) []byte { return []byte("{not json") })
	corrupt("schema-bump", func(_ string, data []byte) []byte {
		// A file written under an older (or newer) schema version must be
		// rejected, so bumping SchemaVersion invalidates stale entries.
		return []byte(strings.Replace(string(data), SchemaVersion, "macc-ccache/v0", 1))
	})
	corrupt("checksum", func(_ string, data []byte) []byte {
		return []byte(strings.Replace(string(data), "ret r0", "ret r1", 1))
	})
}

// TestDiskUnparsableRTLIsMiss covers the case where the envelope is intact
// (valid JSON, matching checksum) but the RTL text no longer parses: the
// reparse revalidation must turn it into a miss.
func TestDiskUnparsableRTLIsMiss(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("src", "cfg", "alpha")
	a := New(Options{Dir: dir})
	// Put trusts a non-empty Text, so an envelope with a correct checksum
	// over junk RTL lands on disk.
	e := entryFor(t, "f", 1)
	e.Text = "junk f(r0) {\nentry:\n\tret r0\n}\n"
	if err := a.storeDisk(key, e); err != nil {
		t.Fatal(err)
	}
	b := New(Options{Dir: dir})
	if _, ok := b.Get(key); ok {
		t.Fatal("unparsable RTL served as a hit")
	}
	if b.Metrics().CounterValue("ccache.disk_invalid") != 1 {
		t.Fatal("disk_invalid counter did not move")
	}
}

func TestSingleflightDedupIsShared(t *testing.T) {
	c := New(Options{})
	key := KeyOf("src", "cfg", "alpha")

	const waiters = 7
	started := make(chan struct{})
	release := make(chan struct{})
	joined := make(chan struct{}, waiters)
	c.onWait = func() { joined <- struct{}{} }

	computes := 0
	var wg sync.WaitGroup
	results := make([]Entry, waiters+1)
	leaderErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		e, hit, err := c.GetOrCompute(key, func() (Entry, error) {
			computes++
			close(started)
			<-release
			return entryFor(t, "f", 2), nil
		})
		if hit {
			err = fmt.Errorf("leader reported hit")
		}
		leaderErr <- err
		results[0] = e
	}()
	<-started
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, hit, err := c.GetOrCompute(key, func() (Entry, error) {
				t.Error("waiter computed")
				return Entry{}, nil
			})
			if err != nil || !hit {
				t.Errorf("waiter %d: hit=%v err=%v", i, hit, err)
			}
			results[i+1] = e
		}(i)
	}
	// Wait until every waiter has actually joined the flight, then let the
	// leader finish: the dedup count is deterministic.
	for i := 0; i < waiters; i++ {
		<-joined
	}
	close(release)
	wg.Wait()
	if err := <-leaderErr; err != nil {
		t.Fatal(err)
	}
	if computes != 1 {
		t.Fatalf("compute ran %d times", computes)
	}
	if got := c.Metrics().CounterValue("ccache.dedup_waiters"); got != waiters {
		t.Fatalf("dedup_waiters = %d, want %d", got, waiters)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Program != results[0].Program {
			t.Fatalf("waiter %d got a different program", i)
		}
	}
}

func TestGetOrComputeErrorSharedNotStored(t *testing.T) {
	c := New(Options{Dir: t.TempDir()})
	key := KeyOf("bad", "cfg", "alpha")
	wantErr := fmt.Errorf("boom")
	_, hit, err := c.GetOrCompute(key, func() (Entry, error) { return Entry{}, wantErr })
	if hit || err != wantErr {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("errored compute was cached")
	}
}

func TestUncacheableReturnedButNotStored(t *testing.T) {
	c := New(Options{Dir: t.TempDir()})
	key := KeyOf("deg", "cfg", "alpha")
	e := entryFor(t, "f", 1)
	e.Uncacheable = true
	got, hit, err := c.GetOrCompute(key, func() (Entry, error) { return e, nil })
	if err != nil || hit || got.Program == nil {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("uncacheable entry was stored")
	}
	if entries, _ := filepath.Glob(filepath.Join(c.dir, "*", "*.json")); len(entries) != 0 {
		t.Fatalf("uncacheable entry written to disk: %v", entries)
	}
}

// TestConcurrentHitMissEvict hammers a tiny-budget, disk-backed cache from
// many goroutines mixing Get, Put, and GetOrCompute — run under -race in CI.
func TestConcurrentHitMissEvict(t *testing.T) {
	c := New(Options{MemBudget: 4096, Dir: t.TempDir()})
	keys := make([]Key, 8)
	progs := make([]*rtl.Program, len(keys))
	small := make([]*rtl.Program, len(keys))
	for i := range keys {
		keys[i] = KeyOf(fmt.Sprintf("src%d", i), "cfg", "alpha")
		progs[i] = prog(t, fmt.Sprintf("f%d", i), 10+i)
		small[i] = prog(t, fmt.Sprintf("f%d", i), 5)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ki := (g + i) % len(keys)
				k := keys[ki]
				switch i % 3 {
				case 0:
					c.Get(k)
				case 1:
					e, _, err := c.GetOrCompute(k, func() (Entry, error) {
						return Entry{Program: progs[ki]}, nil
					})
					if err != nil || e.Program == nil {
						t.Errorf("GetOrCompute: %v", err)
						return
					}
					_ = e.CloneProgram()
				case 2:
					c.Put(k, Entry{Program: small[ki]})
				}
			}
		}(g)
	}
	wg.Wait()
}
