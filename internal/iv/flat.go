package iv

import (
	"macc/internal/cfg"
	"macc/internal/rtl"
)

// Flat twins of the induction-variable analysis, mirroring Analyze over a
// FlatFn so the flat coalescer sees exactly the IVs, invariants, and
// control test the graph coalescer would. Instructions are identified by
// absolute index instead of pointer.

// FlatBasicIV is BasicIV with instruction indices.
type FlatBasicIV struct {
	Reg  rtl.Reg
	Step int64 // net change per iteration
	Incs []int32
}

// FlatControl is Control with instruction indices.
type FlatControl struct {
	Cmp    int32 // the Set* compare in the header
	Branch int32 // the header terminator
	IV     rtl.Reg
	Bound  rtl.Operand // loop invariant
	Op     rtl.Op
	Signed bool
}

// FlatInfo is Info for one flat natural loop.
type FlatInfo struct {
	Loop     *cfg.FlatLoop
	Graph    *cfg.FlatGraph
	BasicIVs map[rtl.Reg]*FlatBasicIV
	Control  *FlatControl

	defsInLoop map[rtl.Reg]int
}

// AnalyzeFlat mirrors Analyze on the flat form.
func AnalyzeFlat(g *cfg.FlatGraph, l *cfg.FlatLoop) *FlatInfo {
	info := &FlatInfo{
		Loop:       l,
		Graph:      g,
		BasicIVs:   make(map[rtl.Reg]*FlatBasicIV),
		defsInLoop: make(map[rtl.Reg]int),
	}
	f := g.F
	for _, bi := range l.Blocks {
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			if d, ok := f.Def(i); ok {
				info.defsInLoop[d]++
			}
		}
	}
	info.findBasicIVs()
	info.findControl()
	return info
}

// Invariant reports whether register r has no definition inside the loop.
func (info *FlatInfo) Invariant(r rtl.Reg) bool { return info.defsInLoop[r] == 0 }

// InvariantOperand reports whether operand o is a constant or an invariant
// register.
func (info *FlatInfo) InvariantOperand(o rtl.Operand) bool {
	if r, ok := o.IsReg(); ok {
		return info.Invariant(r)
	}
	return o.Kind == rtl.KindConst
}

// flatIVStep recognizes "r = r ± const" at instruction i.
func flatIVStep(f *rtl.FlatFn, i int32, r rtl.Reg) (int64, bool) {
	switch f.Op[i] {
	case rtl.Add:
		if ar, ok := f.A[i].IsReg(); ok && ar == r {
			if c, ok := f.B[i].IsConst(); ok {
				return c, true
			}
		}
		if br, ok := f.B[i].IsReg(); ok && br == r {
			if c, ok := f.A[i].IsConst(); ok {
				return c, true
			}
		}
	case rtl.Sub:
		if ar, ok := f.A[i].IsReg(); ok && ar == r {
			if c, ok := f.B[i].IsConst(); ok {
				return -c, true
			}
		}
	}
	return 0, false
}

func (info *FlatInfo) findBasicIVs() {
	l, g := info.Loop, info.Graph
	f := g.F
	cand := make(map[rtl.Reg]*FlatBasicIV)
	bad := make(map[rtl.Reg]bool)
	for _, bi := range l.Blocks {
		b := &f.Blocks[bi]
		for i := b.InstrStart; i < b.InstrEnd; i++ {
			d, ok := f.Def(i)
			if !ok || bad[d] {
				continue
			}
			step, isInc := flatIVStep(f, i, d)
			// Every in-loop definition must be an increment executed once
			// per iteration (its block dominates the latch).
			if !isInc || !g.Dominates(bi, l.Latch) {
				bad[d] = true
				delete(cand, d)
				continue
			}
			iv := cand[d]
			if iv == nil {
				iv = &FlatBasicIV{Reg: d}
				cand[d] = iv
			}
			iv.Step += step
			iv.Incs = append(iv.Incs, i)
		}
	}
	for r, iv := range cand {
		if iv.Step != 0 && !bad[r] {
			info.BasicIVs[r] = iv
		}
	}
}

func (info *FlatInfo) findControl() {
	l := info.Loop
	f := info.Graph.F
	ti, top, ok := f.TermIdx(l.Header)
	if !ok || top != rtl.Branch {
		return
	}
	condReg, ok := f.A[ti].IsReg()
	if !ok {
		return
	}
	// The compare must be the header's definition of the branch condition.
	cmp := int32(-1)
	hb := &f.Blocks[l.Header]
	for i := hb.InstrStart; i < ti; i++ {
		if d, ok := f.Def(i); ok && d == condReg {
			cmp = i
		}
	}
	if cmp < 0 || !f.Op[cmp].IsCompare() {
		return
	}
	continueOnTrue := l.Contains(f.Target[ti]) && !l.Contains(f.Else[ti])
	continueOnFalse := l.Contains(f.Else[ti]) && !l.Contains(f.Target[ti])
	if !continueOnTrue && !continueOnFalse {
		return
	}
	op := f.Op[cmp]
	a, b := f.A[cmp], f.B[cmp]
	if continueOnFalse {
		op = negateCmp(op)
	}
	// See Info.findControl for the offset-of-IV acceptance rationale.
	resolveIV := func(r rtl.Reg) (rtl.Reg, bool) {
		if info.BasicIVs[r] != nil {
			return r, true
		}
		if info.defsInLoop[r] != 1 {
			return rtl.NoReg, false
		}
		for _, bi := range l.Blocks {
			blk := &f.Blocks[bi]
			for i := blk.InstrStart; i < blk.InstrEnd; i++ {
				d, ok := f.Def(i)
				if !ok || d != r {
					continue
				}
				if f.Op[i] == rtl.Add || f.Op[i] == rtl.Sub {
					if base, ok := f.A[i].IsReg(); ok && info.BasicIVs[base] != nil {
						if _, isC := f.B[i].IsConst(); isC {
							return base, true
						}
					}
					if f.Op[i] == rtl.Add {
						if base, ok := f.B[i].IsReg(); ok && info.BasicIVs[base] != nil {
							if _, isC := f.A[i].IsConst(); isC {
								return base, true
							}
						}
					}
				}
				return rtl.NoReg, false
			}
		}
		return rtl.NoReg, false
	}
	// Normalize the IV to the left-hand side.
	tryIV := func(side rtl.Operand, other rtl.Operand, o rtl.Op) bool {
		sr, ok := side.IsReg()
		if !ok {
			return false
		}
		r, ok := resolveIV(sr)
		if !ok {
			return false
		}
		iv := info.BasicIVs[r]
		if !info.InvariantOperand(other) {
			return false
		}
		switch o {
		case rtl.SetLT, rtl.SetLE:
			if iv.Step <= 0 {
				return false
			}
		case rtl.SetGT, rtl.SetGE:
			if iv.Step >= 0 {
				return false
			}
		default:
			return false
		}
		info.Control = &FlatControl{
			Cmp: cmp, Branch: ti, IV: r, Bound: other, Op: o, Signed: f.Signed[cmp],
		}
		return true
	}
	if tryIV(a, b, op) {
		return
	}
	tryIV(b, a, swapCmp(op))
}
