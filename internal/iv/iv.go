// Package iv implements induction-variable analysis and the two derived
// transformations the coalescing algorithm depends on (Figure 2 of the
// paper): strength reduction of address expressions into pointer induction
// variables — which gives every memory reference the loop-invariant base +
// constant displacement shape the offset calculation needs — and linear
// function test replacement, which lets EliminateInductionVariables remove
// the integer counter entirely, as in the paper's Figure 1b where the loop
// ends by comparing the array pointer against a precomputed limit.
package iv

import (
	"fmt"
	"sort"

	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/rtl"
	"macc/internal/telemetry"
)

// BasicIV is a register whose only in-loop definitions add a constant.
type BasicIV struct {
	Reg  rtl.Reg
	Step int64 // net change per iteration
	Incs []*rtl.Instr
}

// Control describes the loop's header exit test, normalized so the loop
// continues while "IV cmp Bound" holds.
type Control struct {
	Cmp    *rtl.Instr // the Set* compare in the header
	Branch *rtl.Instr // the header terminator
	IV     rtl.Reg
	Bound  rtl.Operand // loop invariant
	// Op is SetLT/SetLE (counting up) or SetGT/SetGE (counting down) with
	// the IV conceptually on the left-hand side.
	Op     rtl.Op
	Signed bool
}

// Info is the result of analyzing one natural loop.
type Info struct {
	Loop     *cfg.Loop
	Graph    *cfg.Graph
	BasicIVs map[rtl.Reg]*BasicIV
	Control  *Control

	defsInLoop map[rtl.Reg]int
	du         *dataflow.DefUse
	instrLoop  map[*rtl.Instr]*rtl.Block
}

// Analyze inspects a natural loop and finds its invariant registers, basic
// induction variables, and controlling test. It never fails; absent
// features are simply nil/empty.
func Analyze(g *cfg.Graph, l *cfg.Loop, du *dataflow.DefUse) *Info {
	info := &Info{
		Loop:       l,
		Graph:      g,
		BasicIVs:   make(map[rtl.Reg]*BasicIV),
		defsInLoop: make(map[rtl.Reg]int),
		du:         du,
		instrLoop:  make(map[*rtl.Instr]*rtl.Block),
	}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			info.instrLoop[in] = b
			if d, ok := in.Def(); ok {
				info.defsInLoop[d]++
			}
		}
	}
	info.findBasicIVs()
	info.findControl()
	return info
}

// Invariant reports whether register r has no definition inside the loop.
func (info *Info) Invariant(r rtl.Reg) bool { return info.defsInLoop[r] == 0 }

// InvariantOperand reports whether operand o is a constant or an invariant
// register.
func (info *Info) InvariantOperand(o rtl.Operand) bool {
	if r, ok := o.IsReg(); ok {
		return info.Invariant(r)
	}
	return o.Kind == rtl.KindConst
}

// ivStep recognizes "r = r ± const" and returns the signed step.
func ivStep(in *rtl.Instr, r rtl.Reg) (int64, bool) {
	switch in.Op {
	case rtl.Add:
		if ar, ok := in.A.IsReg(); ok && ar == r {
			if c, ok := in.B.IsConst(); ok {
				return c, true
			}
		}
		if br, ok := in.B.IsReg(); ok && br == r {
			if c, ok := in.A.IsConst(); ok {
				return c, true
			}
		}
	case rtl.Sub:
		if ar, ok := in.A.IsReg(); ok && ar == r {
			if c, ok := in.B.IsConst(); ok {
				return -c, true
			}
		}
	}
	return 0, false
}

func (info *Info) findBasicIVs() {
	l, g := info.Loop, info.Graph
	cand := make(map[rtl.Reg]*BasicIV)
	bad := make(map[rtl.Reg]bool)
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			d, ok := in.Def()
			if !ok || bad[d] {
				continue
			}
			step, isInc := ivStep(in, d)
			// Every in-loop definition must be an increment executed once
			// per iteration (its block dominates the latch).
			if !isInc || !g.Dominates(b, l.Latch) {
				bad[d] = true
				delete(cand, d)
				continue
			}
			iv := cand[d]
			if iv == nil {
				iv = &BasicIV{Reg: d}
				cand[d] = iv
			}
			iv.Step += step
			iv.Incs = append(iv.Incs, in)
		}
	}
	for r, iv := range cand {
		if iv.Step != 0 && !bad[r] {
			info.BasicIVs[r] = iv
		}
	}
}

func (info *Info) findControl() {
	l := info.Loop
	term := l.Header.Term()
	if term == nil || term.Op != rtl.Branch {
		return
	}
	condReg, ok := term.A.IsReg()
	if !ok {
		return
	}
	// The compare must be the header's definition of the branch condition.
	var cmp *rtl.Instr
	for _, in := range l.Header.Body() {
		if d, ok := in.Def(); ok && d == condReg {
			cmp = in
		}
	}
	if cmp == nil || !cmp.Op.IsCompare() {
		return
	}
	continueOnTrue := l.Contains(term.Target) && !l.Contains(term.Else)
	continueOnFalse := l.Contains(term.Else) && !l.Contains(term.Target)
	if !continueOnTrue && !continueOnFalse {
		return
	}
	op := cmp.Op
	a, b := cmp.A, cmp.B
	if continueOnFalse {
		op = negateCmp(op)
	}
	// resolveIV accepts a basic IV directly, or an offset of one computed
	// in the loop ("t = iv + 7" from an unroll guard). The offset shifts
	// the effective bound by a constant, which every consumer of Control
	// treats as an over-approximation of at most one group of iterations.
	resolveIV := func(r rtl.Reg) (rtl.Reg, bool) {
		if info.BasicIVs[r] != nil {
			return r, true
		}
		if info.defsInLoop[r] != 1 {
			return rtl.NoReg, false
		}
		for _, b := range l.Blocks {
			for _, in := range b.Instrs {
				d, ok := in.Def()
				if !ok || d != r {
					continue
				}
				if in.Op == rtl.Add || in.Op == rtl.Sub {
					if base, ok := in.A.IsReg(); ok && info.BasicIVs[base] != nil {
						if _, isC := in.B.IsConst(); isC {
							return base, true
						}
					}
					if in.Op == rtl.Add {
						if base, ok := in.B.IsReg(); ok && info.BasicIVs[base] != nil {
							if _, isC := in.A.IsConst(); isC {
								return base, true
							}
						}
					}
				}
				return rtl.NoReg, false
			}
		}
		return rtl.NoReg, false
	}
	// Normalize the IV to the left-hand side.
	tryIV := func(side rtl.Operand, other rtl.Operand, o rtl.Op) bool {
		sr, ok := side.IsReg()
		if !ok {
			return false
		}
		r, ok := resolveIV(sr)
		if !ok {
			return false
		}
		iv := info.BasicIVs[r]
		if !info.InvariantOperand(other) {
			return false
		}
		switch o {
		case rtl.SetLT, rtl.SetLE:
			if iv.Step <= 0 {
				return false
			}
		case rtl.SetGT, rtl.SetGE:
			if iv.Step >= 0 {
				return false
			}
		default:
			return false
		}
		info.Control = &Control{
			Cmp: cmp, Branch: term, IV: r, Bound: other, Op: o, Signed: cmp.Signed,
		}
		return true
	}
	if tryIV(a, b, op) {
		return
	}
	tryIV(b, a, swapCmp(op))
}

func negateCmp(op rtl.Op) rtl.Op {
	switch op {
	case rtl.SetEQ:
		return rtl.SetNE
	case rtl.SetNE:
		return rtl.SetEQ
	case rtl.SetLT:
		return rtl.SetGE
	case rtl.SetLE:
		return rtl.SetGT
	case rtl.SetGT:
		return rtl.SetLE
	case rtl.SetGE:
		return rtl.SetLT
	}
	return op
}

func swapCmp(op rtl.Op) rtl.Op {
	switch op {
	case rtl.SetLT:
		return rtl.SetGT
	case rtl.SetLE:
		return rtl.SetGE
	case rtl.SetGT:
		return rtl.SetLT
	case rtl.SetGE:
		return rtl.SetLE
	}
	return op
}

// affine is a linear form: sum(coeff_i * term_i) + c, where terms are
// registers (invariant or basic IVs).
type affine struct {
	terms map[rtl.Reg]int64
	c     int64
}

func (a affine) clone() affine {
	t := make(map[rtl.Reg]int64, len(a.terms))
	for k, v := range a.terms {
		t[k] = v
	}
	return affine{terms: t, c: a.c}
}

func (a affine) addScaled(b affine, k int64) affine {
	out := a.clone()
	for r, co := range b.terms {
		out.terms[r] += co * k
		if out.terms[r] == 0 {
			delete(out.terms, r)
		}
	}
	out.c += b.c * k
	return out
}

func (a affine) scale(k int64) affine {
	out := affine{terms: make(map[rtl.Reg]int64, len(a.terms)), c: a.c * k}
	for r, co := range a.terms {
		if co*k != 0 {
			out.terms[r] = co * k
		}
	}
	return out
}

const maxDecomposeDepth = 24

// decompose expresses the value of reg r (at the top of a loop iteration)
// as an affine form over invariant registers and basic IVs. IV-derived
// temporaries must be defined inside the loop by pure single-definition
// instructions; IV increments must live in the latch so every in-body use
// sees the iteration-start value.
func (info *Info) decompose(r rtl.Reg, depth int) (affine, bool) {
	if depth > maxDecomposeDepth {
		return affine{}, false
	}
	if info.Invariant(r) || info.BasicIVs[r] != nil {
		return affine{terms: map[rtl.Reg]int64{r: 1}}, true
	}
	site, ok := info.du.SingleDef(r)
	if !ok {
		return affine{}, false
	}
	if info.instrLoop[site.Instr] == nil {
		// Defined once but outside this loop: invariant after all.
		return affine{terms: map[rtl.Reg]int64{r: 1}}, true
	}
	in := site.Instr
	dec := func(o rtl.Operand) (affine, bool) {
		if c, ok := o.IsConst(); ok {
			return affine{terms: map[rtl.Reg]int64{}, c: c}, true
		}
		or, _ := o.IsReg()
		return info.decompose(or, depth+1)
	}
	switch in.Op {
	case rtl.Mov:
		return dec(in.A)
	case rtl.Add:
		x, ok1 := dec(in.A)
		y, ok2 := dec(in.B)
		if ok1 && ok2 {
			return x.addScaled(y, 1), true
		}
	case rtl.Sub:
		x, ok1 := dec(in.A)
		y, ok2 := dec(in.B)
		if ok1 && ok2 {
			return x.addScaled(y, -1), true
		}
	case rtl.Shl:
		if sh, ok := in.B.IsConst(); ok && sh >= 0 && sh < 32 {
			if x, okx := dec(in.A); okx {
				return x.scale(1 << uint(sh)), true
			}
		}
	case rtl.Mul:
		if k, ok := in.B.IsConst(); ok {
			if x, okx := dec(in.A); okx {
				return x.scale(k), true
			}
		}
		if k, ok := in.A.IsConst(); ok {
			if x, okx := dec(in.B); okx {
				return x.scale(k), true
			}
		}
	}
	return affine{}, false
}

// splitIV separates an affine form into (single basic IV, its coefficient,
// invariant remainder). It fails when zero or multiple IVs appear.
func (info *Info) splitIV(a affine) (ivReg rtl.Reg, scale int64, rest affine, ok bool) {
	rest = affine{terms: make(map[rtl.Reg]int64), c: a.c}
	ivReg = rtl.NoReg
	for r, co := range a.terms {
		if info.BasicIVs[r] != nil {
			if ivReg != rtl.NoReg {
				return rtl.NoReg, 0, affine{}, false
			}
			ivReg = r
			scale = co
		} else {
			rest.terms[r] = co
		}
	}
	if ivReg == rtl.NoReg || scale == 0 {
		return rtl.NoReg, 0, affine{}, false
	}
	return ivReg, scale, rest, true
}

// keyOf canonicalizes the (invariant part, IV, scale) triple so references
// marching through the same array share one pointer IV.
func keyOf(ivReg rtl.Reg, scale int64, rest affine) string {
	type kv struct {
		r rtl.Reg
		c int64
	}
	var kvs []kv
	for r, c := range rest.terms {
		kvs = append(kvs, kv{r, c})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].r < kvs[j].r })
	s := fmt.Sprintf("iv%d*%d", ivReg, scale)
	for _, e := range kvs {
		s += fmt.Sprintf("+r%d*%d", e.r, e.c)
	}
	return s
}

// PtrIV records one pointer induction variable created by StrengthReduce.
type PtrIV struct {
	Reg   rtl.Reg
	Basis rtl.Reg // the basic IV it linearizes
	Scale int64   // bytes of pointer motion per basis unit
	Step  int64   // bytes per loop iteration (Scale * basis step)
	Init  rtl.Reg // register holding the pointer's value at loop entry
}

// StrengthReduce rewrites every IV-affine memory address in the loop to use
// a pointer induction variable: the invariant part is computed once in the
// preheader, the pointer advances by a constant in the latch, and the
// memory reference becomes base+displacement. Returns the pointer IVs
// created. The loop must have a preheader.
func (info *Info) StrengthReduce(f *rtl.Fn) []*PtrIV {
	l := info.Loop
	if l.Preheader == nil || len(info.BasicIVs) == 0 {
		return nil
	}
	// Collect rewritable references grouped by affine key.
	type ref struct {
		in   *rtl.Instr
		disp int64 // decomposed constant part
	}
	groups := make(map[string][]ref)
	meta := make(map[string]struct {
		ivReg rtl.Reg
		scale int64
		rest  affine
	})
	for _, b := range l.Blocks {
		if b == l.Latch {
			continue // latch runs after the increments; iteration-start values don't apply
		}
		for _, in := range b.Instrs {
			if !in.IsMem() {
				continue
			}
			base, ok := in.A.IsReg()
			if !ok {
				continue
			}
			if info.Invariant(base) || info.BasicIVs[base] != nil {
				continue // already base+disp form
			}
			a, ok := info.decompose(base, 0)
			if !ok {
				continue
			}
			ivReg, scale, rest, ok := info.splitIV(a)
			if !ok {
				continue
			}
			// All IV increments must be in the latch so the decomposition
			// ("value at iteration start") is valid at this use.
			valid := true
			for _, inc := range info.BasicIVs[ivReg].Incs {
				if info.instrLoop[inc] != l.Latch {
					valid = false
					break
				}
			}
			if !valid {
				continue
			}
			k := keyOf(ivReg, scale, rest)
			groups[k] = append(groups[k], ref{in: in, disp: rest.c})
			meta[k] = struct {
				ivReg rtl.Reg
				scale int64
				rest  affine
			}{ivReg, scale, rest}
		}
	}
	if len(groups) == 0 {
		return nil
	}
	var keys []string
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var ptrs []*PtrIV
	for _, k := range keys {
		m := meta[k]
		refs := groups[k]
		iv := info.BasicIVs[m.ivReg]
		// Preheader: p = sum(coeff*term) + scale*iv  (constant folded out;
		// it rides in each reference's displacement).
		p := f.NewReg()
		emit := func(in *rtl.Instr) { l.Preheader.Append(in) }
		acc := info.emitAffineSum(f, emit, m.rest, m.ivReg, m.scale)
		emit(rtl.MovI(p, acc))
		// Latch: p += scale*step.
		step := m.scale * iv.Step
		l.Latch.Append(rtl.BinI(rtl.Add, p, rtl.R(p), rtl.C(step)))
		for _, r := range refs {
			r.in.A = rtl.R(p)
			r.in.Disp += r.disp
		}
		ptrs = append(ptrs, &PtrIV{Reg: p, Basis: m.ivReg, Scale: m.scale, Step: step, Init: p})
	}
	return ptrs
}

// emitAffineSum materializes sum(coeff*term) + ivScale*iv into a register
// via the emit callback (without the constant part) and returns an operand
// holding the value.
func (info *Info) emitAffineSum(f *rtl.Fn, emit func(*rtl.Instr), rest affine, ivReg rtl.Reg, ivScale int64) rtl.Operand {
	type kv struct {
		r rtl.Reg
		c int64
	}
	kvs := []kv{{ivReg, ivScale}}
	var rs []kv
	for r, c := range rest.terms {
		rs = append(rs, kv{r, c})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].r < rs[j].r })
	kvs = append(kvs, rs...)
	var acc rtl.Operand
	for _, e := range kvs {
		var term rtl.Operand
		if e.c == 1 {
			term = rtl.R(e.r)
		} else {
			t := f.NewReg()
			emit(rtl.BinI(rtl.Mul, t, rtl.R(e.r), rtl.C(e.c)))
			term = rtl.R(t)
		}
		if acc.Kind == rtl.KindNone {
			acc = term
		} else {
			t := f.NewReg()
			emit(rtl.BinI(rtl.Add, t, acc, term))
			acc = rtl.R(t)
		}
	}
	return acc
}

// ReplaceTest performs linear function test replacement: when the loop's
// controlling comparison tests a basic IV that a pointer IV linearizes, the
// test is rewritten to compare the pointer against a bound computed once in
// the preheader. This is what frees EliminateInductionVariables (dead-IV
// removal in the opt package) to delete the counter. Reports whether the
// test was replaced.
func (info *Info) ReplaceTest(f *rtl.Fn, ptrs []*PtrIV) bool {
	ctl := info.Control
	l := info.Loop
	if ctl == nil || l.Preheader == nil || len(ptrs) == 0 {
		return false
	}
	// Pick a pointer IV based on the controlled basic IV.
	var p *PtrIV
	for _, cand := range ptrs {
		if cand.Basis == ctl.IV {
			p = cand
			break
		}
	}
	if p == nil {
		return false
	}
	// Only strict tests stay exact under multiplication by the scale.
	if ctl.Op != rtl.SetLT && ctl.Op != rtl.SetGT {
		return false
	}
	emit := func(in *rtl.Instr) { l.Preheader.Append(in) }
	// pend = p_init + scale*(bound - iv_entry)
	diff := f.NewReg()
	emit(rtl.BinI(rtl.Sub, diff, ctl.Bound, rtl.R(ctl.IV)))
	scaled := f.NewReg()
	emit(rtl.BinI(rtl.Mul, scaled, rtl.R(diff), rtl.C(p.Scale)))
	pend := f.NewReg()
	emit(rtl.BinI(rtl.Add, pend, rtl.R(p.Init), rtl.R(scaled)))

	op := ctl.Op
	if p.Scale < 0 {
		op = swapCmp(op)
	}
	// Rewrite the compare in place: cond = p OP pend (continue form). When
	// the original continued on false, negate back.
	newOp := op
	if !l.Contains(ctl.Branch.Target) {
		newOp = negateCmp(op)
	}
	ctl.Cmp.Op = newOp
	ctl.Cmp.A = rtl.R(p.Reg)
	ctl.Cmp.B = rtl.R(pend)
	ctl.Cmp.Signed = true
	// Update control info to reflect the pointer-based test.
	info.Control = &Control{
		Cmp: ctl.Cmp, Branch: ctl.Branch, IV: p.Reg, Bound: rtl.R(pend),
		Op: op, Signed: true,
	}
	return true
}

// Remark summarizes this loop's induction-variable analysis as an Analysis
// telemetry remark: how many basic IVs were found, whether the controlling
// trip test was recognized, and the control IV's step. Passes emit it so
// every downstream accept/reject (unrolling, coalescing) can be read
// against the analysis facts it depended on.
func (info *Info) Remark(pass, fn string) telemetry.Remark {
	rem := telemetry.Remark{
		Kind: telemetry.Analysis,
		Pass: pass,
		Fn:   fn,
		Name: "LoopAnalysis",
		Args: map[string]int64{"basic_ivs": int64(len(info.BasicIVs))},
	}
	if info.Loop != nil && info.Loop.Header != nil {
		rem.Loop = info.Loop.Header.Name
	}
	if info.Control != nil {
		rem.Reason = "control:recognized"
		if biv := info.BasicIVs[info.Control.IV]; biv != nil {
			rem.Args["control_step"] = biv.Step
		}
	} else {
		rem.Reason = "control:unrecognized"
	}
	return rem
}
