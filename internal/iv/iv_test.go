package iv_test

import (
	"testing"

	"macc/internal/cfg"
	"macc/internal/dataflow"
	"macc/internal/iv"
	"macc/internal/opt"
	"macc/internal/rtl"
)

// buildArrayLoop creates the canonical pre-strength-reduction loop:
//
//	for (i = 0; i < n; i++) acc += M2[a + 2*i];
//
// returning the function and the registers of interest.
func buildArrayLoop() (f *rtl.Fn, iReg, accReg rtl.Reg, body *rtl.Block) {
	f = rtl.NewFn("t", 2)
	a, n := f.Params[0], f.Params[1]
	entry := f.Entry()
	header := f.NewBlock("header")
	body = f.NewBlock("body")
	latch := f.NewBlock("latch")
	exit := f.NewBlock("exit")
	i, acc, cond := f.NewReg(), f.NewReg(), f.NewReg()
	sc, addr, val := f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.MovI(acc, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Shl, sc, rtl.R(i), rtl.C(1)),
		rtl.BinI(rtl.Add, addr, rtl.R(a), rtl.R(sc)),
		rtl.LoadI(val, rtl.R(addr), 0, rtl.W2, true),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(val)),
		rtl.JumpI(latch),
	}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}
	return f, i, acc, body
}

func analyze(f *rtl.Fn) (*cfg.Graph, *cfg.Loop, *iv.Info) {
	g := cfg.New(f)
	l := g.FindLoops()[0]
	g.EnsurePreheader(l)
	du := dataflow.ComputeDefUse(f)
	return g, l, iv.Analyze(g, l, du)
}

func TestBasicIVDetection(t *testing.T) {
	f, i, acc, _ := buildArrayLoop()
	_, _, info := analyze(f)
	biv := info.BasicIVs[i]
	if biv == nil {
		t.Fatal("i not detected as basic IV")
	}
	if biv.Step != 1 {
		t.Errorf("step = %d, want 1", biv.Step)
	}
	if info.BasicIVs[acc] != nil {
		t.Error("acc (non-constant increment) must not be an IV")
	}
}

func TestNegativeStepIV(t *testing.T) {
	f := rtl.NewFn("t", 1)
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	latch := f.NewBlock("l")
	exit := f.NewBlock("e")
	i, cond := f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.R(f.Params[0])), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetGT, cond, rtl.R(i), rtl.C(0)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{rtl.JumpI(latch)}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Sub, i, rtl.R(i), rtl.C(2)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(i))}
	_, _, info := analyze(f)
	biv := info.BasicIVs[i]
	if biv == nil || biv.Step != -2 {
		t.Fatalf("descending IV not detected: %+v", biv)
	}
	if info.Control == nil || info.Control.Op != rtl.SetGT || info.Control.IV != i {
		t.Errorf("descending control not recognized: %+v", info.Control)
	}
}

func TestControlRecognition(t *testing.T) {
	f, i, _, _ := buildArrayLoop()
	_, _, info := analyze(f)
	ctl := info.Control
	if ctl == nil {
		t.Fatal("control test not recognized")
	}
	if ctl.IV != i || ctl.Op != rtl.SetLT || !ctl.Signed {
		t.Errorf("control = %+v", ctl)
	}
	if b, ok := ctl.Bound.IsReg(); !ok || b != f.Params[1] {
		t.Errorf("bound = %v, want n", ctl.Bound)
	}
}

func TestControlThroughOffset(t *testing.T) {
	// Guard shape: t = i + 7; if t < n — as the unroller emits.
	f := rtl.NewFn("t", 1)
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	exit := f.NewBlock("e")
	i, tmp, cond := f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Add, tmp, rtl.R(i), rtl.C(7)),
		rtl.SBinI(rtl.SetLT, cond, rtl.R(tmp), rtl.R(f.Params[0])),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(8)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(i))}
	_, _, info := analyze(f)
	if info.Control == nil || info.Control.IV != i {
		t.Fatalf("offset control not seen through: %+v", info.Control)
	}
}

func TestInvariantClassification(t *testing.T) {
	f, i, acc, _ := buildArrayLoop()
	_, _, info := analyze(f)
	if !info.Invariant(f.Params[0]) || !info.Invariant(f.Params[1]) {
		t.Error("parameters must be invariant")
	}
	if info.Invariant(i) || info.Invariant(acc) {
		t.Error("loop-varying registers misclassified")
	}
}

func TestStrengthReduceCreatesPointerIV(t *testing.T) {
	f, _, _, body := buildArrayLoop()
	_, l, info := analyze(f)
	ptrs := info.StrengthReduce(f)
	if len(ptrs) != 1 {
		t.Fatalf("got %d pointer IVs, want 1", len(ptrs))
	}
	p := ptrs[0]
	if p.Scale != 2 || p.Step != 2 {
		t.Errorf("scale/step = %d/%d, want 2/2", p.Scale, p.Step)
	}
	// The load must now use the pointer directly.
	var load *rtl.Instr
	for _, in := range body.Instrs {
		if in.Op == rtl.Load {
			load = in
		}
	}
	if r, ok := load.A.IsReg(); !ok || r != p.Reg {
		t.Errorf("load base not rewritten: %s", load)
	}
	// The latch must advance the pointer.
	foundStep := false
	for _, in := range l.Latch.Instrs {
		if d, ok := in.Def(); ok && d == p.Reg && in.Op == rtl.Add {
			if c, _ := in.B.IsConst(); c == 2 {
				foundStep = true
			}
		}
	}
	if !foundStep {
		t.Error("pointer step not in latch")
	}
	if err := f.Verify(); err != nil {
		t.Error(err)
	}
}

func TestStrengthReduceSharesGroups(t *testing.T) {
	// Two loads off the same affine form with different constants must
	// share one pointer IV with distinct displacements.
	f := rtl.NewFn("t", 2)
	a, n := f.Params[0], f.Params[1]
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	latch := f.NewBlock("l")
	exit := f.NewBlock("e")
	i, acc, cond := f.NewReg(), f.NewReg(), f.NewReg()
	s1, a1, v1 := f.NewReg(), f.NewReg(), f.NewReg()
	s2, a2, a3, v2 := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.MovI(acc, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Shl, s1, rtl.R(i), rtl.C(0)), // i
		rtl.BinI(rtl.Add, a1, rtl.R(a), rtl.R(s1)),
		rtl.LoadI(v1, rtl.R(a1), 0, rtl.W1, false),
		rtl.BinI(rtl.Shl, s2, rtl.R(i), rtl.C(0)),
		rtl.BinI(rtl.Add, a2, rtl.R(a), rtl.R(s2)),
		rtl.BinI(rtl.Add, a3, rtl.R(a2), rtl.C(1)), // a + i + 1
		rtl.LoadI(v2, rtl.R(a3), 0, rtl.W1, false),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(v1)),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(v2)),
		rtl.JumpI(latch),
	}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}

	_, _, info := analyze(f)
	ptrs := info.StrengthReduce(f)
	if len(ptrs) != 1 {
		t.Fatalf("expected one shared pointer IV, got %d", len(ptrs))
	}
	var disps []int64
	for _, in := range body.Instrs {
		if in.Op == rtl.Load {
			disps = append(disps, in.Disp)
		}
	}
	if len(disps) != 2 || disps[0] != 0 || disps[1] != 1 {
		t.Errorf("displacements = %v, want [0 1]", disps)
	}
}

func TestReplaceTestEliminatesCounter(t *testing.T) {
	f, i, _, _ := buildArrayLoop()
	_, l, info := analyze(f)
	ptrs := info.StrengthReduce(f)
	if !info.ReplaceTest(f, ptrs) {
		t.Fatal("test not replaced")
	}
	// The header compare now tests the pointer.
	cmp := info.Control.Cmp
	if r, ok := cmp.A.IsReg(); !ok || r != ptrs[0].Reg {
		t.Errorf("compare A = %v, want pointer", cmp.A)
	}
	// After dead-IV elimination the counter disappears entirely.
	opt.EliminateDeadIVs(f)
	opt.Clean(f)
	for _, b := range f.Blocks {
		if b == l.Preheader {
			continue // the preheader may still read i's initial value
		}
		for _, in := range b.Instrs {
			if d, ok := in.Def(); ok && d == i {
				t.Errorf("counter definition survives in %s: %s", b, in)
			}
			if in.UsesReg(i) && b != l.Preheader {
				t.Errorf("counter use survives in %s: %s", b, in)
			}
		}
	}
	if err := f.Verify(); err != nil {
		t.Error(err)
	}
}

func TestReplaceTestDeclinesNonStrict(t *testing.T) {
	f, _, _, _ := buildArrayLoop()
	_, _, info := analyze(f)
	// Force the control op to <=: replacement must refuse (inexact under
	// scaling).
	info.Control.Op = rtl.SetLE
	ptrs := info.StrengthReduce(f)
	if info.ReplaceTest(f, ptrs) {
		t.Error("non-strict test must not be replaced")
	}
}

func TestDecomposeRejectsNonAffine(t *testing.T) {
	// addr = a + i*i is not affine in i; no pointer IV may be created.
	f := rtl.NewFn("t", 2)
	a, n := f.Params[0], f.Params[1]
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	latch := f.NewBlock("l")
	exit := f.NewBlock("e")
	i, cond, sq, addr, v, acc := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.MovI(acc, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Mul, sq, rtl.R(i), rtl.R(i)),
		rtl.BinI(rtl.Add, addr, rtl.R(a), rtl.R(sq)),
		rtl.LoadI(v, rtl.R(addr), 0, rtl.W1, false),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(v)),
		rtl.JumpI(latch),
	}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}

	_, _, info := analyze(f)
	if ptrs := info.StrengthReduce(f); len(ptrs) != 0 {
		t.Errorf("non-affine address strength-reduced: %d IVs", len(ptrs))
	}
}

func TestStrengthReduceNegativeScale(t *testing.T) {
	// addr = a + (n-1-i): a mirror-style backwards walk. The pointer IV
	// must get scale -1 and a negative step.
	f := rtl.NewFn("t", 2)
	a, n := f.Params[0], f.Params[1]
	entry := f.Entry()
	header := f.NewBlock("h")
	body := f.NewBlock("b")
	latch := f.NewBlock("l")
	exit := f.NewBlock("e")
	i, acc, cond := f.NewReg(), f.NewReg(), f.NewReg()
	t1, t2, addr, v := f.NewReg(), f.NewReg(), f.NewReg(), f.NewReg()
	entry.Instrs = []*rtl.Instr{rtl.MovI(i, rtl.C(0)), rtl.MovI(acc, rtl.C(0)), rtl.JumpI(header)}
	header.Instrs = []*rtl.Instr{
		rtl.SBinI(rtl.SetLT, cond, rtl.R(i), rtl.R(n)),
		rtl.BranchI(rtl.R(cond), body, exit),
	}
	body.Instrs = []*rtl.Instr{
		rtl.BinI(rtl.Sub, t1, rtl.R(n), rtl.C(1)),
		rtl.BinI(rtl.Sub, t2, rtl.R(t1), rtl.R(i)), // n-1-i
		rtl.BinI(rtl.Add, addr, rtl.R(a), rtl.R(t2)),
		rtl.LoadI(v, rtl.R(addr), 0, rtl.W1, false),
		rtl.BinI(rtl.Add, acc, rtl.R(acc), rtl.R(v)),
		rtl.JumpI(latch),
	}
	latch.Instrs = []*rtl.Instr{rtl.BinI(rtl.Add, i, rtl.R(i), rtl.C(1)), rtl.JumpI(header)}
	exit.Instrs = []*rtl.Instr{rtl.RetI(rtl.R(acc))}

	_, _, info := analyze(f)
	ptrs := info.StrengthReduce(f)
	if len(ptrs) != 1 {
		t.Fatalf("pointer IVs = %d, want 1", len(ptrs))
	}
	if ptrs[0].Scale != -1 || ptrs[0].Step != -1 {
		t.Errorf("scale/step = %d/%d, want -1/-1", ptrs[0].Scale, ptrs[0].Step)
	}
	// LFTR must flip the comparison direction for the descending pointer.
	if !info.ReplaceTest(f, ptrs) {
		t.Fatal("test not replaced")
	}
	if info.Control.Op != rtl.SetGT {
		t.Errorf("descending control op = %s, want >", info.Control.Op)
	}
	if err := f.Verify(); err != nil {
		t.Error(err)
	}
}
