package farm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable test clock.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// step is one scripted action against the breaker.
type step struct {
	op      string // "allow", "deny", "ok", "fail", "cancel", "advance", "health", "state"
	advance time.Duration
	state   BreakerState
}

func allow() step                  { return step{op: "allow"} }
func deny() step                   { return step{op: "deny"} }
func ok() step                     { return step{op: "ok"} }
func fail() step                   { return step{op: "fail"} }
func advance(d time.Duration) step { return step{op: "advance", advance: d} }
func health() step                 { return step{op: "health"} }
func inState(s BreakerState) step  { return step{op: "state", state: s} }

// TestBreakerTransitions drives the full closed -> open -> half-open ->
// closed cycle (and its failure branches) through scripted outcome tables.
func TestBreakerTransitions(t *testing.T) {
	opts := BreakerOptions{
		ConsecutiveFailures: 3,
		ErrorRate:           0.5,
		Window:              8,
		MinSamples:          4,
		Cooldown:            time.Second,
		SuccessesToClose:    2,
	}
	cases := []struct {
		name  string
		steps []step
		trips int64
	}{
		{
			name: "consecutive failures trip, cooldown probes, successes close",
			steps: []step{
				inState(Closed),
				allow(), fail(), allow(), fail(), inState(Closed),
				allow(), fail(), inState(Open), // 3rd consecutive failure trips
				deny(),                                  // open fails fast
				advance(999 * time.Millisecond), deny(), // cooldown not elapsed
				advance(2 * time.Millisecond),
				allow(), inState(HalfOpen), // first probe admitted
				deny(),        // single probe at a time
				ok(),          // probe 1 succeeds
				allow(), ok(), // probe 2 succeeds
				inState(Closed), // SuccessesToClose reached
			},
			trips: 1,
		},
		{
			name: "half-open failure reopens and restarts the cooldown",
			steps: []step{
				allow(), fail(), allow(), fail(), allow(), fail(), inState(Open),
				advance(time.Second),
				allow(), inState(HalfOpen),
				fail(), inState(Open), // probe failed: back to open
				deny(), // and the cooldown restarted
				advance(time.Second),
				allow(), ok(), allow(), ok(), inState(Closed),
			},
			trips: 2,
		},
		{
			name: "error rate over the window trips without consecutive failures",
			steps: []step{
				// fail/ok alternation: never 3 consecutive, but 50% of 4+.
				allow(), fail(), allow(), ok(), allow(), fail(), inState(Closed),
				allow(), ok(), inState(Open), // 4 samples at rate 0.5
			},
			trips: 1,
		},
		{
			name: "cancel releases the half-open probe slot without an outcome",
			steps: []step{
				allow(), fail(), allow(), fail(), allow(), fail(), inState(Open),
				advance(time.Second),
				allow(), inState(HalfOpen),
				deny(),
				{op: "cancel"}, // abandoned hedge: no judgement
				inState(HalfOpen),
				allow(), ok(), allow(), ok(), inState(Closed),
			},
			trips: 1,
		},
		{
			name: "health check recovers an open breaker before the cooldown",
			steps: []step{
				allow(), fail(), allow(), fail(), allow(), fail(), inState(Open),
				deny(),
				health(), inState(HalfOpen),
				allow(), ok(), allow(), ok(), inState(Closed),
			},
			trips: 1,
		},
		{
			name: "closing resets the window (old failures are forgiven)",
			steps: []step{
				allow(), fail(), allow(), fail(), allow(), fail(), inState(Open),
				advance(time.Second),
				allow(), ok(), allow(), ok(), inState(Closed),
				// A fresh window: one failure among successes must not trip.
				allow(), fail(), allow(), ok(), allow(), ok(), allow(), ok(),
				inState(Closed),
			},
			trips: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{now: time.Unix(0, 0)}
			o := opts
			o.Clock = clk.Now
			b := NewBreaker(o)
			for i, s := range tc.steps {
				switch s.op {
				case "allow":
					if !b.Allow() {
						t.Fatalf("step %d: Allow() = false, want true (state %v)", i, b.State())
					}
				case "deny":
					if b.Allow() {
						t.Fatalf("step %d: Allow() = true, want false (state %v)", i, b.State())
					}
				case "ok":
					b.Record(true)
				case "fail":
					b.Record(false)
				case "cancel":
					b.Cancel()
				case "advance":
					clk.Advance(s.advance)
				case "health":
					b.HealthOK()
				case "state":
					if got := b.State(); got != s.state {
						t.Fatalf("step %d: state %v, want %v", i, got, s.state)
					}
				}
			}
			if got := b.Trips(); got != tc.trips {
				t.Errorf("trips = %d, want %d", got, tc.trips)
			}
		})
	}
}

// TestHalfOpenProbeRace hammers Allow from many goroutines against a
// breaker whose cooldown has just elapsed: exactly one goroutine per probe
// round may win the admission, no matter the interleaving. Run under -race
// this also proves the state transitions are data-race free.
func TestHalfOpenProbeRace(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{
		ConsecutiveFailures: 1,
		Cooldown:            time.Millisecond,
		SuccessesToClose:    1,
		Clock:               clk.Now,
	})

	for round := 0; round < 50; round++ {
		if !b.Allow() {
			t.Fatalf("round %d: breaker not closed at round start", round)
		}
		b.Record(false) // trip
		if b.State() != Open {
			t.Fatalf("round %d: state %v after failure, want open", round, b.State())
		}
		clk.Advance(2 * time.Millisecond)

		const goroutines = 16
		var admitted atomic.Int32
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d goroutines admitted into half-open, want exactly 1", round, n)
		}
		b.Record(true) // close again for the next round
		if b.State() != Closed {
			t.Fatalf("round %d: state %v after probe success, want closed", round, b.State())
		}
	}
}

// TestHalfOpenConcurrentProbeAndCancel interleaves winners that Cancel with
// winners that Record, asserting the probe slot never leaks (the breaker
// keeps admitting future probes) and never admits two at once.
func TestHalfOpenConcurrentProbeAndCancel(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	b := NewBreaker(BreakerOptions{
		ConsecutiveFailures: 1,
		Cooldown:            time.Millisecond,
		SuccessesToClose:    3,
		Clock:               clk.Now,
	})
	b.Allow()
	b.Record(false)
	clk.Advance(2 * time.Millisecond)

	var wg sync.WaitGroup
	var inProbe atomic.Int32
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !b.Allow() {
					continue
				}
				if n := inProbe.Add(1); n != 1 && b.State() == HalfOpen {
					t.Errorf("%d concurrent half-open probes", n)
				}
				switch {
				case b.State() == Closed:
					// Breaker closed under us mid-loop; the admission
					// contract still requires a release.
					inProbe.Add(-1)
					b.Record(true)
				case g%2 == 0:
					inProbe.Add(-1)
					b.Cancel()
				default:
					inProbe.Add(-1)
					b.Record(true)
				}
			}
		}(g)
	}
	wg.Wait()
}
