package farm

import (
	"net/http"
	"strings"

	"macc/internal/ccache"
	"macc/internal/telemetry"
)

// PeerPathPrefix is the peer cache-lookup route; the remainder of the path
// is the 64-hex-digit content address.
const PeerPathPrefix = "/peer/entry/"

// PeerCacheHandler serves a replica's local cache tiers (memory and disk,
// never its own fallback — so peer lookups cannot recurse through the farm)
// to other replicas. GET with a content-addressed key; 200 carries the disk
// envelope verbatim, 404 is an honest miss. The requesting side revalidates
// everything, so this handler stays trivially cheap.
func PeerCacheHandler(cache *ccache.Cache, reg *telemetry.Registry) http.Handler {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		hexKey := strings.TrimPrefix(r.URL.Path, PeerPathPrefix)
		key, err := ccache.ParseKey(hexKey)
		if err != nil {
			http.Error(w, "bad key", http.StatusBadRequest)
			return
		}
		reg.Counter("farm.peer_probes").Add(1)
		data, ok := cache.EncodeLocal(key)
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		reg.Counter("farm.peer_serves").Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
}
