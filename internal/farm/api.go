package farm

import (
	"macc/internal/core"
	"macc/internal/telemetry/dtrace"
)

// Debug-plane routes shared by maccd and the clients that push or pull
// trace spans.
const (
	// DebugSpansPath accepts a SpanIngest POST: clients (loadgen,
	// macc -server) push their local spans so a replica can answer
	// /debug/trace/<id> with the full tree.
	DebugSpansPath = "/debug/spans"
	// DebugTracePrefix serves one assembled trace; the remainder of the
	// path is the 32-hex trace ID.
	DebugTracePrefix = "/debug/trace/"
	// DebugFlightPath serves the replica's flight recorder.
	DebugFlightPath = "/debug/flight"
	// DebugFarmPath serves the plain-text farm dashboard.
	DebugFarmPath = "/debug/farm"
)

// SpanIngest is the POST /debug/spans body.
type SpanIngest struct {
	Spans []dtrace.Span `json:"spans"`
}

// TraceDump is the /debug/trace/<id>?format=spans answer: the raw span
// set, used replica-to-replica for trace assembly and by loadgen for
// per-hop breakdowns.
type TraceDump struct {
	Trace string        `json:"trace"`
	Spans []dtrace.Span `json:"spans"`
}

// Wire types shared by the service (cmd/maccd), the remote CLI
// (cmd/macc -server), and the load generator (cmd/loadgen).

// Priority tiers for admission control. Interactive traffic (a developer
// waiting at a prompt) is never queued behind batch traffic (a sweep
// harness); a saturated replica sheds batch first.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// CompileRequest selects a source, a machine, and a pipeline configuration
// (the same knobs as the cmd/macc flags). Zero values mean the default
// optimizing configuration.
type CompileRequest struct {
	Source string `json:"source"`
	// Machine is alpha, m88100, or m68030 (default alpha).
	Machine string `json:"machine,omitempty"`
	// Coalesce is both, loads, stores, or off (default both).
	Coalesce string `json:"coalesce,omitempty"`
	// Unroll is auto, off, or a factor >= 2 (default auto).
	Unroll string `json:"unroll,omitempty"`
	// Optimize and Schedule default to true; send false to disable.
	Optimize  *bool `json:"optimize,omitempty"`
	Schedule  *bool `json:"schedule,omitempty"`
	Registers int   `json:"registers,omitempty"`
	// Priority is interactive (default) or batch; batch requests are the
	// first shed under saturation.
	Priority string `json:"priority,omitempty"`
}

// AdmissionTier resolves the request's priority tier, defaulting to
// interactive. RunRequest inherits it through embedding, so the service's
// admission control can treat both request kinds uniformly.
func (r CompileRequest) AdmissionTier() string {
	if r.Priority == PriorityBatch {
		return PriorityBatch
	}
	return PriorityInteractive
}

// CompileResponse carries the optimized RTL and the compile's side records.
type CompileResponse struct {
	RTL         string            `json:"rtl"`
	Machine     string            `json:"machine"`
	Cached      bool              `json:"cached"`
	Degraded    bool              `json:"degraded"`
	Diagnostics string            `json:"diagnostics,omitempty"`
	Reports     []core.LoopReport `json:"reports,omitempty"`
	Unrolled    map[string]int    `json:"unrolled,omitempty"`
}

// RunRequest compiles like CompileRequest and then executes Call on the
// simulator. Data seeds simulator memory before the run.
type RunRequest struct {
	CompileRequest
	// Call is "fn(arg, ...)" with integer arguments.
	Call string `json:"call"`
	// Mem is the simulator memory size in bytes (default 1 MiB).
	Mem int `json:"mem,omitempty"`
	// Data writes integer arrays into memory before the run.
	Data []DataWrite `json:"data,omitempty"`
}

// DataWrite is one pre-run memory initialization.
type DataWrite struct {
	Addr  int64   `json:"addr"`
	Width int     `json:"width"` // 1, 2, 4, or 8 bytes
	Ints  []int64 `json:"ints"`
}

// RunResponse is the simulator's verdict.
type RunResponse struct {
	Ret          int64 `json:"ret"`
	Cycles       int64 `json:"cycles"`
	Instrs       int64 `json:"instrs"`
	Loads        int64 `json:"loads"`
	Stores       int64 `json:"stores"`
	MemRefs      int64 `json:"mem_refs"`
	ICacheMisses int64 `json:"icache_misses"`
	DCacheMisses int64 `json:"dcache_misses"`
	Cached       bool  `json:"cached"`
}
