package farm

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"macc/internal/ccache"
	"macc/internal/telemetry"
	"macc/internal/telemetry/dtrace"
)

// ClientOptions configures a resilient farm client. Zero values select the
// defaults noted on each field.
type ClientOptions struct {
	// Peers are the replica base URLs ("http://host:port").
	Peers []string
	// AttemptTimeout bounds one compile/run attempt (default 10s).
	AttemptTimeout time.Duration
	// LookupTimeout bounds one peer cache-lookup attempt (default 300ms).
	// Lookups are an optimization: a slow peer must cost less than the
	// compile it would have saved.
	LookupTimeout time.Duration
	// MaxAttempts bounds retries per call, first try included (default 3).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// attempts (defaults 25ms and 1s); jitter in [0.5, 1.5) is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// HedgeQuantile is the observed per-peer latency quantile after which
	// a second request is hedged to another peer (default 0.99).
	HedgeQuantile float64
	// HedgeMinSamples gates hedging on observed latency until this many
	// samples exist (default 16); before that a quarter of the attempt
	// timeout is used.
	HedgeMinSamples int64
	// HedgeFloor is the minimum hedge delay (default 2ms), so a fast farm
	// does not double every request.
	HedgeFloor time.Duration
	// Breaker tunes the per-peer circuit breakers.
	Breaker BreakerOptions
	// HealthInterval is the background health-probe period for peers with
	// open breakers (default 500ms; negative disables the prober).
	HealthInterval time.Duration
	// Transport overrides the HTTP transport (fault injection hooks in
	// here; nil uses http.DefaultTransport).
	Transport http.RoundTripper
	// Seed makes backoff jitter deterministic for tests (0 seeds from the
	// breaker clock's notion of now).
	Seed int64
	// Metrics receives the client's counters (nil: private registry).
	Metrics *telemetry.Registry
	// MaxResponse bounds a response body in bytes (default 16 MiB).
	MaxResponse int64
	// Tracer records a span per logical call and per attempt leg (hedges
	// marked, losers marked abandoned), parented under the span context
	// carried by the call's ctx. The attempt span's context rides the
	// traceparent header, so the answering replica's ingress span parents
	// under the exact leg that reached it. Nil disables tracing.
	Tracer *dtrace.Tracer
}

// StatusError is a non-retryable HTTP-level answer from a peer (a 4xx, or
// a 5xx that survived every retry), carrying the service's error message.
type StatusError struct {
	Code int
	Msg  string
	Peer string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("peer %s: status %d: %s", e.Peer, e.Code, e.Msg)
}

// ErrNoPeers means every peer's circuit breaker was open for the whole
// retry budget: the farm is unreachable and the caller should fall back to
// a local compile.
var ErrNoPeers = errors.New("farm: no peer available (all circuit breakers open)")

// errAbandoned marks a hedged request leg cancelled because the other leg
// already won; it carries no verdict about the peer.
var errAbandoned = errors.New("farm: attempt abandoned")

// peerState is one replica as seen by the client.
type peerState struct {
	name    string
	url     string
	breaker *Breaker
	lat     *telemetry.Histogram // successful-attempt latency (ns)
}

// Client is the resilient farm client used replica-to-replica (peer cache
// lookups) and by cmd/macc and cmd/loadgen (remote compiles). All methods
// are safe for concurrent use.
type Client struct {
	opts  ClientOptions
	peers []*peerState
	http  *http.Client
	reg   *telemetry.Registry

	rmu sync.Mutex
	rng *rand.Rand

	next atomic.Uint64 // round-robin rotation of the primary peer

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewClient builds a client over the given peers and starts the background
// health prober (stop it with Close).
func NewClient(opts ClientOptions) *Client {
	if opts.AttemptTimeout <= 0 {
		opts.AttemptTimeout = 10 * time.Second
	}
	if opts.LookupTimeout <= 0 {
		opts.LookupTimeout = 300 * time.Millisecond
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 25 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = time.Second
	}
	if opts.HedgeQuantile <= 0 || opts.HedgeQuantile >= 1 {
		opts.HedgeQuantile = 0.99
	}
	if opts.HedgeMinSamples <= 0 {
		opts.HedgeMinSamples = 16
	}
	if opts.HedgeFloor <= 0 {
		opts.HedgeFloor = 2 * time.Millisecond
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 500 * time.Millisecond
	}
	if opts.MaxResponse <= 0 {
		opts.MaxResponse = 16 << 20
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		opts: opts,
		http: &http.Client{Transport: opts.Transport},
		reg:  reg,
		rng:  rand.New(rand.NewSource(seed)),
		stop: make(chan struct{}),
	}
	for _, u := range opts.Peers {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		name := u
		if p, err := url.Parse(u); err == nil && p.Host != "" {
			name = p.Host
		}
		c.peers = append(c.peers, &peerState{
			name:    name,
			url:     u,
			breaker: NewBreaker(opts.Breaker),
			lat:     &telemetry.Histogram{},
		})
	}
	if opts.HealthInterval > 0 && len(c.peers) > 0 {
		c.wg.Add(1)
		go c.probeLoop()
	}
	return c
}

// Close stops the health prober.
func (c *Client) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Peers returns the configured peer count.
func (c *Client) Peers() int { return len(c.peers) }

// PeerURLs returns the configured peer base URLs (trace assembly fans a
// /debug/trace pull across these).
func (c *Client) PeerURLs() []string {
	urls := make([]string, len(c.peers))
	for i, p := range c.peers {
		urls[i] = p.url
	}
	return urls
}

// Metrics returns the registry the client publishes into.
func (c *Client) Metrics() *telemetry.Registry { return c.reg }

// PublishStats refreshes the breaker gauges (farm.breaker_trips,
// farm.breaker_open) in the metrics registry; callers snapshotting metrics
// invoke it first.
func (c *Client) PublishStats() {
	var trips int64
	var open float64
	for _, p := range c.peers {
		trips += p.breaker.Trips()
		if p.breaker.State() != Closed {
			open++
		}
	}
	c.reg.Gauge("farm.breaker_trips").Set(float64(trips))
	c.reg.Gauge("farm.breaker_open").Set(open)
}

// probeLoop health-checks peers whose breakers are open and feeds successes
// back as recovery signals.
func (c *Client) probeLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
		}
		for _, p := range c.peers {
			if p.breaker.State() != Open {
				continue
			}
			c.reg.Counter("farm.health_probes").Add(1)
			ctx, cancel := context.WithTimeout(context.Background(), c.opts.HealthInterval)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.url+"/healthz", nil)
			if err != nil {
				cancel()
				continue
			}
			resp, err := c.http.Do(req)
			if err == nil {
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					p.breaker.HealthOK()
					c.reg.Counter("farm.health_recoveries").Add(1)
				}
			}
			cancel()
		}
	}
}

// callSpec shapes one resilient call.
type callSpec struct {
	method   string
	path     string
	body     []byte
	timeout  time.Duration // per attempt
	attempts int
	hedge    bool
	kind     string // dtrace span kind for the call span (KindCall/KindLookup)
}

// callResult is one call's outcome.
type callResult struct {
	status int
	body   []byte
	peer   string
	err    error
}

// call runs the full resilience stack for one logical request: peer
// selection under circuit breakers, per-attempt timeouts, hedging, and
// exponential backoff with jitter between attempts. One call span wraps
// the whole retry budget; each leg gets its own attempt span.
func (c *Client) call(ctx context.Context, spec callSpec) callResult {
	if len(c.peers) == 0 {
		return callResult{err: ErrNoPeers}
	}
	kind := spec.kind
	if kind == "" {
		kind = dtrace.KindCall
	}
	callSp := c.opts.Tracer.StartSpan(dtrace.FromContext(ctx), spec.path, kind)
	defer callSp.End()
	last := callResult{err: ErrNoPeers}
	rounds := 0
	for attempt := 0; attempt < spec.attempts; attempt++ {
		if attempt > 0 {
			c.reg.Counter("farm.retries").Add(1)
			if err := c.sleepBackoff(ctx, attempt); err != nil {
				callSp.SetErr(err.Error())
				return callResult{err: err}
			}
		}
		rounds++
		primary, second := c.pickPeers()
		if primary == nil {
			last = callResult{err: ErrNoPeers}
			c.reg.Counter("farm.no_peer").Add(1)
			// The short-circuit is a span of its own: the trace shows the
			// round where every breaker refused admission.
			sc := c.opts.Tracer.StartSpan(callSp.Context(), "breaker_short_circuit", dtrace.KindBreaker)
			sc.SetErr(ErrNoPeers.Error())
			sc.End()
			continue
		}
		res := c.race(ctx, spec, callSp, primary, second)
		if res.err == nil && res.status < 500 {
			callSp.SetAttr("rounds", itoa(rounds))
			callSp.SetAttr("winner_peer", res.peer)
			callSp.SetAttr("status", itoa(res.status))
			return res
		}
		if res.err != nil && ctx.Err() != nil {
			callSp.SetErr(ctx.Err().Error())
			return callResult{err: ctx.Err()}
		}
		last = res
	}
	if last.err == nil {
		// A 5xx that survived every retry surfaces as a StatusError.
		last.err = &StatusError{Code: last.status, Msg: errorMsg(last.body), Peer: last.peer}
	}
	callSp.SetAttr("rounds", itoa(rounds))
	if last.err != nil {
		callSp.SetErr(last.err.Error())
	}
	return last
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

// race runs one attempt on the primary peer and hedges a second leg to
// another peer when the primary exceeds its observed p99 latency (or fails
// outright). The first acceptable answer wins; the loser is cancelled and
// its breaker admission released without a verdict.
func (c *Client) race(ctx context.Context, spec callSpec, callSp *dtrace.ActiveSpan, primary, second *peerState) callResult {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	resc := make(chan callResult, 2)
	outstanding := 1
	go c.attempt(actx, spec, primary, "primary", callSp.Context(), resc)

	var hedgeCh <-chan time.Time
	if spec.hedge && second != nil {
		t := time.NewTimer(c.hedgeDelay(primary, spec))
		defer t.Stop()
		hedgeCh = t.C
	}
	hedged := false
	launchSecond := func() bool {
		if second == nil || !second.breaker.Allow() {
			return false
		}
		outstanding++
		hedged = true
		go c.attempt(actx, spec, second, "hedge", callSp.Context(), resc)
		second = nil // one hedge leg only
		return true
	}

	var last callResult
	for {
		select {
		case r := <-resc:
			outstanding--
			if r.err == nil && r.status < 500 {
				if hedged {
					callSp.SetAttr("hedged", "true")
				}
				if r.peer != primary.name {
					c.reg.Counter("farm.hedge_wins").Add(1)
					callSp.SetAttr("hedge_won", "true")
				} else if hedged {
					callSp.SetAttr("hedge_won", "false")
				}
				return r
			}
			if !errors.Is(r.err, errAbandoned) {
				last = r
			}
			// The leg failed: fail over to the hedge peer immediately
			// rather than waiting out the hedge timer.
			if outstanding == 0 {
				hedgeCh = nil
				if !launchSecond() {
					return last
				}
			}
		case <-hedgeCh:
			hedgeCh = nil
			if launchSecond() {
				c.reg.Counter("farm.hedges").Add(1)
			}
		case <-ctx.Done():
			return callResult{err: ctx.Err()}
		}
	}
}

// attempt issues one HTTP request to one peer and settles its breaker
// admission: success and failure are recorded, abandonment (the hedge race
// was decided elsewhere) is released without a verdict. Each leg records
// its own attempt span — outcome ok, error, or abandoned (the hedge-race
// loser) — and propagates that span's context as the traceparent header,
// so the replica's ingress span parents under the leg that reached it.
func (c *Client) attempt(ctx context.Context, spec callSpec, p *peerState, leg string, parent dtrace.SpanContext, resc chan<- callResult) {
	start := time.Now()
	sp := c.opts.Tracer.StartSpan(parent, "attempt "+p.name, dtrace.KindAttempt)
	sp.SetAttr("peer", p.name)
	sp.SetAttr("leg", leg)
	finish := func(r callResult, outcome string) {
		sp.SetAttr("outcome", outcome)
		if r.status != 0 {
			sp.SetAttr("status", itoa(r.status))
		}
		if r.err != nil {
			sp.SetErr(r.err.Error())
		}
		sp.End()
		resc <- r
	}
	actx, cancel := context.WithTimeout(ctx, spec.timeout)
	defer cancel()
	var rd io.Reader
	if spec.body != nil {
		rd = bytes.NewReader(spec.body)
	}
	req, err := http.NewRequestWithContext(actx, spec.method, p.url+spec.path, rd)
	if err != nil {
		p.breaker.Record(false)
		finish(callResult{peer: p.name, err: err}, "error")
		return
	}
	if spec.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sp.Context().Valid() {
		req.Header.Set(dtrace.Header, sp.Context().Traceparent())
	}
	resp, err := c.http.Do(req)
	var body []byte
	if err == nil {
		body, err = io.ReadAll(io.LimitReader(resp.Body, c.opts.MaxResponse))
		resp.Body.Close()
	}
	if err != nil {
		if ctx.Err() != nil && actx.Err() != context.DeadlineExceeded {
			// Cancelled from above: either the race was decided by the
			// other leg or the caller gave up. Not the peer's fault.
			p.breaker.Cancel()
			finish(callResult{peer: p.name, err: errAbandoned}, "abandoned")
			return
		}
		p.breaker.Record(false)
		c.reg.Counter("farm.attempt_errors").Add(1)
		finish(callResult{peer: p.name, err: fmt.Errorf("peer %s: %w", p.name, err)}, "error")
		return
	}
	healthy := resp.StatusCode < 500
	p.breaker.Record(healthy)
	if healthy {
		p.lat.Observe(time.Since(start).Nanoseconds())
	} else {
		c.reg.Counter("farm.attempt_5xx").Add(1)
	}
	outcome := "ok"
	if !healthy {
		outcome = "5xx"
	}
	finish(callResult{status: resp.StatusCode, body: body, peer: p.name}, outcome)
}

// pickPeers selects the primary peer (claiming its breaker admission) and
// a hedge candidate (not yet claimed), rotating the starting point for
// load balance. Peers with open breakers are skipped.
func (c *Client) pickPeers() (primary, second *peerState) {
	n := len(c.peers)
	start := int(c.next.Add(1)) % n
	for i := 0; i < n; i++ {
		p := c.peers[(start+i)%n]
		if primary == nil {
			if p.breaker.Allow() {
				primary = p
			}
			continue
		}
		if p.breaker.State() != Open {
			return primary, p
		}
	}
	return primary, nil
}

// hedgeDelay is how long to give the primary before hedging: its observed
// HedgeQuantile latency once enough samples exist, a quarter of the attempt
// timeout before that, floored and capped.
func (c *Client) hedgeDelay(p *peerState, spec callSpec) time.Duration {
	var d time.Duration
	if p.lat.Count() >= c.opts.HedgeMinSamples {
		d = time.Duration(p.lat.Quantile(c.opts.HedgeQuantile))
	} else {
		d = spec.timeout / 4
	}
	if d < c.opts.HedgeFloor {
		d = c.opts.HedgeFloor
	}
	if d > spec.timeout {
		d = spec.timeout
	}
	return d
}

// sleepBackoff waits the jittered exponential backoff for the given attempt
// number (1-based for the first retry).
func (c *Client) sleepBackoff(ctx context.Context, attempt int) error {
	d := c.opts.BackoffBase << uint(attempt-1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	c.rmu.Lock()
	jitter := 0.5 + c.rng.Float64()
	c.rmu.Unlock()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// errorMsg extracts the service's {"error": ...} message from a body.
func errorMsg(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := strings.TrimSpace(string(body))
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// Lookup asks the farm for a cached compilation. The answer is revalidated
// end to end (schema, key, checksum, reparse): a corrupt, stale, or
// truncated peer answer — and every transport failure — is a silent miss,
// never an error, so degraded peers can only cost latency. 404 is the
// peers' honest miss answer and is returned quickly without retries.
func (c *Client) Lookup(ctx context.Context, key ccache.Key) (ccache.Entry, bool) {
	attempts := 1
	if len(c.peers) > 1 {
		attempts = 2
	}
	res := c.call(ctx, callSpec{
		method:   http.MethodGet,
		path:     PeerPathPrefix + key.String(),
		timeout:  c.opts.LookupTimeout,
		attempts: attempts,
		hedge:    true,
		kind:     dtrace.KindLookup,
	})
	if res.err != nil || res.status != http.StatusOK {
		return ccache.Entry{}, false
	}
	e, err := ccache.DecodeEntry(key, res.body)
	if err != nil {
		c.reg.Counter("farm.peer_invalid").Add(1)
		return ccache.Entry{}, false
	}
	c.reg.Counter("farm.peer_lookup_hits").Add(1)
	return e, true
}

// FallbackFunc adapts Lookup to the ccache.Options.Fallback signature with
// an internal deadline, wiring the farm in as a third cache tier. The
// caller's ctx carries the request's span context, so the lookup's spans
// land under the right trace.
func (c *Client) FallbackFunc() func(context.Context, ccache.Key) (ccache.Entry, bool) {
	return func(ctx context.Context, key ccache.Key) (ccache.Entry, bool) {
		ctx, cancel := context.WithTimeout(ctx, 3*c.opts.LookupTimeout)
		defer cancel()
		return c.Lookup(ctx, key)
	}
}

// PeerStat is one replica's client-side view: breaker state, trip count,
// and observed successful-attempt latency. The /debug/farm dashboard
// renders these.
type PeerStat struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	State   string `json:"state"`
	Trips   int64  `json:"trips"`
	Samples int64  `json:"samples"`
	P50NS   int64  `json:"p50_ns"`
	P99NS   int64  `json:"p99_ns"`
}

// PeerStats snapshots every peer's breaker and latency view.
func (c *Client) PeerStats() []PeerStat {
	out := make([]PeerStat, 0, len(c.peers))
	for _, p := range c.peers {
		out = append(out, PeerStat{
			Name:    p.name,
			URL:     p.url,
			State:   p.breaker.State().String(),
			Trips:   p.breaker.Trips(),
			Samples: p.lat.Count(),
			P50NS:   p.lat.Quantile(0.5),
			P99NS:   p.lat.Quantile(0.99),
		})
	}
	return out
}

// ReportTrace pushes the client tracer's spans for traceID to the farm
// (POST /debug/spans), so a replica-side /debug/trace/<id> query can show
// the client's root and attempt spans alongside the server's. Push is
// best-effort: the first peer that accepts wins, failures are silent (a
// trace missing client spans is still a trace). Returns whether any peer
// accepted.
func (c *Client) ReportTrace(ctx context.Context, traceID string) bool {
	spans := c.opts.Tracer.Spans(traceID)
	if len(spans) == 0 {
		return false
	}
	body, err := json.Marshal(SpanIngest{Spans: spans})
	if err != nil {
		return false
	}
	// Plain single-attempt posts: running this through call() would mint
	// new spans into the very trace being reported.
	for _, p := range c.peers {
		if p.breaker.State() == Open {
			continue
		}
		actx, cancel := context.WithTimeout(ctx, c.opts.LookupTimeout)
		req, err := http.NewRequestWithContext(actx, http.MethodPost, p.url+DebugSpansPath, bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http.Do(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
			resp.Body.Close()
		}
		cancel()
		if err == nil && resp.StatusCode == http.StatusOK {
			return true
		}
	}
	return false
}

// PostJSON runs one resilient JSON POST against the farm (retries, backoff,
// hedging, breakers) and decodes the answer into out. It returns the name
// of the peer that answered.
func (c *Client) PostJSON(ctx context.Context, path string, in, out any) (string, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return "", err
	}
	res := c.call(ctx, callSpec{
		method:   http.MethodPost,
		path:     path,
		body:     body,
		timeout:  c.opts.AttemptTimeout,
		attempts: c.opts.MaxAttempts,
		hedge:    true,
		kind:     dtrace.KindCall,
	})
	if res.err != nil {
		return res.peer, res.err
	}
	if res.status != http.StatusOK {
		return res.peer, &StatusError{Code: res.status, Msg: errorMsg(res.body), Peer: res.peer}
	}
	if err := json.Unmarshal(res.body, out); err != nil {
		return res.peer, fmt.Errorf("peer %s: bad response: %w", res.peer, err)
	}
	return res.peer, nil
}
