package farm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"macc/internal/ccache"
	"macc/internal/rtl"
	"macc/internal/telemetry"
	"macc/internal/telemetry/dtrace"
)

// testEntry builds a small valid cache entry (its flat image decodes and
// validates, so it survives DecodeEntry's revalidation).
func testEntry(t *testing.T, name string) ccache.Entry {
	t.Helper()
	src := fmt.Sprintf("func %s(r0) {\nentry:\n\tr1 = r0 + 1\n\tret r1\n}\n", name)
	p, err := rtl.ParseProgram(src)
	if err != nil {
		t.Fatalf("testEntry: %v", err)
	}
	fp, err := rtl.Flatten(p)
	if err != nil {
		t.Fatalf("testEntry: %v", err)
	}
	return ccache.Entry{Flat: fp, Machine: "alpha"}
}

// entryRTL materializes and prints an entry for comparisons.
func entryRTL(t *testing.T, e ccache.Entry) string {
	t.Helper()
	p, err := e.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	return p.String()
}

// fastClient builds a client with small timeouts and no health prober
// unless asked for.
func fastClient(t *testing.T, opts ClientOptions) *Client {
	t.Helper()
	if opts.AttemptTimeout == 0 {
		opts.AttemptTimeout = 2 * time.Second
	}
	if opts.LookupTimeout == 0 {
		opts.LookupTimeout = time.Second
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = time.Millisecond
	}
	if opts.BackoffMax == 0 {
		opts.BackoffMax = 4 * time.Millisecond
	}
	if opts.HealthInterval == 0 {
		opts.HealthInterval = -1 // off unless the test wants it
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	c := NewClient(opts)
	t.Cleanup(c.Close)
	return c
}

// TestPeerLookupHitAndMiss serves a real cache through PeerCacheHandler and
// looks it up through the resilient client: a present key round-trips the
// entry, an absent key is a clean miss (404, no error, no retries burned).
func TestPeerLookupHitAndMiss(t *testing.T) {
	cache := ccache.New(ccache.Options{})
	key := ccache.KeyOf("src", "cfg", "alpha")
	want := testEntry(t, "f")
	cache.Put(key, want)

	reg := telemetry.NewRegistry()
	ts := httptest.NewServer(PeerCacheHandler(cache, reg))
	defer ts.Close()

	c := fastClient(t, ClientOptions{Peers: []string{ts.URL}})
	e, ok := c.Lookup(context.Background(), key)
	if !ok {
		t.Fatal("Lookup miss for a key the peer has")
	}
	if got, wantRTL := entryRTL(t, e), entryRTL(t, want); got != wantRTL {
		t.Fatalf("Lookup returned different RTL:\n got %q\nwant %q", got, wantRTL)
	}
	if got := reg.CounterValue("farm.peer_serves"); got != 1 {
		t.Errorf("peer_serves = %d, want 1", got)
	}
	if _, ok := c.Lookup(context.Background(), ccache.KeyOf("other", "cfg", "alpha")); ok {
		t.Fatal("Lookup hit for a key nobody has")
	}
	if got := c.Metrics().CounterValue("farm.peer_lookup_hits"); got != 1 {
		t.Errorf("peer_lookup_hits = %d, want 1", got)
	}
}

// TestLookupRejectsCorruptAnswer flips bytes in the peer's answer: the
// checksum/reparse gate must turn it into a silent miss, never an error
// and never a bogus entry.
func TestLookupRejectsCorruptAnswer(t *testing.T) {
	cache := ccache.New(ccache.Options{})
	key := ccache.KeyOf("src", "cfg", "alpha")
	cache.Put(key, testEntry(t, "f"))
	data, ok := cache.EncodeLocal(key)
	if !ok {
		t.Fatal("EncodeLocal miss")
	}

	// Flip one byte mid-envelope: the checksum/structural-decode gate must
	// catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x01
	if bytes.Equal(corrupt, data) {
		t.Fatal("corruption did not apply")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(corrupt)
	}))
	defer ts.Close()

	c := fastClient(t, ClientOptions{Peers: []string{ts.URL}})
	if _, ok := c.Lookup(context.Background(), key); ok {
		t.Fatal("corrupt peer answer accepted as a hit")
	}
	if got := c.Metrics().CounterValue("farm.peer_invalid"); got == 0 {
		t.Error("peer_invalid not counted")
	}

	// A stale answer (valid envelope for a different key) is equally
	// rejected.
	other := ccache.KeyOf("other", "cfg", "alpha")
	if _, ok := c.Lookup(context.Background(), other); ok {
		t.Fatal("stale (wrong-key) peer answer accepted as a hit")
	}
}

// TestFallbackPromotesPeerHit wires the farm client into a second cache as
// its fallback tier: a local miss consults the peer, revalidates, promotes
// into the local tiers, and counts ccache.peer_hits.
func TestFallbackPromotesPeerHit(t *testing.T) {
	remote := ccache.New(ccache.Options{})
	key := ccache.KeyOf("src", "cfg", "alpha")
	remote.Put(key, testEntry(t, "f"))
	ts := httptest.NewServer(PeerCacheHandler(remote, nil))
	defer ts.Close()

	c := fastClient(t, ClientOptions{Peers: []string{ts.URL}})
	local := ccache.New(ccache.Options{Fallback: c.FallbackFunc()})
	if _, ok := local.Get(key); !ok {
		t.Fatal("fallback lookup did not reach the peer")
	}
	if got := local.Metrics().CounterValue("ccache.peer_hits"); got != 1 {
		t.Errorf("ccache.peer_hits = %d, want 1", got)
	}
	// Promoted: a second Get is a local memory hit, not another peer trip.
	before := c.Metrics().CounterValue("farm.peer_lookup_hits")
	if _, ok := local.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if after := c.Metrics().CounterValue("farm.peer_lookup_hits"); after != before {
		t.Error("second Get went back to the peer instead of the promoted copy")
	}
}

// TestPostJSONRetriesTransientFailures: two 500s then success must succeed
// within the retry budget and count the retries.
func TestPostJSONRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"answer": 42}`))
	}))
	defer ts.Close()

	c := fastClient(t, ClientOptions{Peers: []string{ts.URL}, MaxAttempts: 3})
	var out struct {
		Answer int `json:"answer"`
	}
	peer, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out)
	if err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if out.Answer != 42 || peer == "" {
		t.Fatalf("answer=%d peer=%q", out.Answer, peer)
	}
	if got := c.Metrics().CounterValue("farm.retries"); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

// TestPostJSONDoesNotRetryClientErrors: a 4xx is the caller's fault; it
// must surface immediately as a StatusError without burning retries.
func TestPostJSONDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad source"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := fastClient(t, ClientOptions{Peers: []string{ts.URL}, MaxAttempts: 3})
	err := func() error {
		var out struct{}
		_, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out)
		return err
	}()
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want StatusError 400", err)
	}
	if se.Msg != "bad source" {
		t.Errorf("msg = %q, want the service's error text", se.Msg)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server called %d times for a 400, want 1", n)
	}
}

// TestFailoverToSecondPeer: the primary peer is down; the same logical call
// must still succeed via the other replica, and the dead peer's breaker
// must trip after enough failures.
func TestFailoverToSecondPeer(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer dead.Close()
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{}`))
	}))
	defer alive.Close()

	c := fastClient(t, ClientOptions{
		Peers:       []string{dead.URL, alive.URL},
		MaxAttempts: 2,
		Breaker:     BreakerOptions{ConsecutiveFailures: 3, Cooldown: time.Hour},
	})
	var out struct{}
	for i := 0; i < 10; i++ {
		if _, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out); err != nil {
			t.Fatalf("call %d failed despite a healthy replica: %v", i, err)
		}
	}
	c.PublishStats()
	if got := c.reg.Gauge("farm.breaker_trips").Value(); got < 1 {
		t.Errorf("dead peer's breaker never tripped (trips gauge = %v)", got)
	}
	// With the dead peer's breaker open, calls keep succeeding via the
	// living one and stop hitting the dead one.
	if _, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out); err != nil {
		t.Fatalf("call with open breaker failed: %v", err)
	}
}

// TestAllPeersDownReturnsError: with every breaker open the client reports
// ErrNoPeers (the caller's signal to fall back to a local compile).
func TestAllPeersDownReturnsError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := fastClient(t, ClientOptions{
		Peers:       []string{ts.URL},
		MaxAttempts: 2,
		Breaker:     BreakerOptions{ConsecutiveFailures: 2, Cooldown: time.Hour},
	})
	var out struct{}
	// Trip the breaker.
	var firstErr error
	for i := 0; i < 3 && firstErr == nil; i++ {
		_, firstErr = c.PostJSON(context.Background(), "/x", struct{}{}, &out)
		firstErr = nil
		if c.peers[0].breaker.State() == Open {
			break
		}
	}
	if c.peers[0].breaker.State() != Open {
		t.Fatal("breaker did not trip")
	}
	_, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out)
	if !errors.Is(err, ErrNoPeers) {
		t.Fatalf("err = %v, want ErrNoPeers", err)
	}
}

// TestHedgedRequestWins: the primary peer stalls well past the hedge delay;
// the hedge leg to the second peer must answer the call, counted as a
// hedge win.
func TestHedgedRequestWins(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // before the Cleanup'd slow.Close, so its handler can exit
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server can watch for client disconnect.
		io.Copy(io.Discard, r.Body)
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.Write([]byte(`{"peer":"slow"}`))
	}))
	t.Cleanup(slow.Close)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"peer":"fast"}`))
	}))
	defer fast.Close()

	// next.Add(1) % 2 == 1 on the first call: peers[1] is the primary, so
	// put the slow server there to make the hedge deterministic.
	c := fastClient(t, ClientOptions{
		Peers:          []string{fast.URL, slow.URL},
		AttemptTimeout: 5 * time.Second,
		HedgeFloor:     5 * time.Millisecond,
		MaxAttempts:    1,
	})
	var out struct {
		Peer string `json:"peer"`
	}
	start := time.Now()
	if _, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out); err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	if out.Peer != "fast" {
		t.Fatalf("answered by %q, want the hedge leg", out.Peer)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge took %v; it waited for the slow primary", elapsed)
	}
	if got := c.Metrics().CounterValue("farm.hedges"); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := c.Metrics().CounterValue("farm.hedge_wins"); got != 1 {
		t.Errorf("hedge_wins = %d, want 1", got)
	}
}

// TestHedgeSpansMarkWinner: a hedged call's trace must show both legs —
// the stalled primary attempt marked abandoned, the hedge attempt marked
// ok — and the call span marked hedged with hedge_won=true, so a trace
// reader can tell exactly which leg answered.
func TestHedgeSpansMarkWinner(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		select {
		case <-release:
		case <-r.Context().Done():
		}
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(slow.Close)
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.Header.Get(dtrace.Header); got == "" {
			t.Error("attempt carried no traceparent header")
		}
		w.Write([]byte(`{}`))
	}))
	defer fast.Close()

	tr := dtrace.New("client", 0)
	// peers[1] is the first primary (see TestHedgedRequestWins): slow there.
	c := fastClient(t, ClientOptions{
		Peers:          []string{fast.URL, slow.URL},
		AttemptTimeout: 5 * time.Second,
		HedgeFloor:     5 * time.Millisecond,
		MaxAttempts:    1,
		Tracer:         tr,
	})
	root := tr.StartRoot("req", dtrace.KindRequest)
	ctx := dtrace.ContextWith(context.Background(), root.Context())
	var out struct{}
	if _, err := c.PostJSON(ctx, "/x", struct{}{}, &out); err != nil {
		t.Fatalf("PostJSON: %v", err)
	}
	root.End()

	// The abandoned primary's span ends asynchronously with its cancelled
	// HTTP attempt; wait for both legs to be filed.
	var spans []dtrace.Span
	attempts := func() int {
		spans = tr.Spans(root.TraceID())
		n := 0
		for _, sp := range spans {
			if sp.Kind == dtrace.KindAttempt {
				n++
			}
		}
		return n
	}
	for wait := 0; wait < 200 && attempts() < 2; wait++ {
		time.Sleep(5 * time.Millisecond)
	}

	legs := make(map[string]dtrace.Span)
	var call dtrace.Span
	for _, sp := range spans {
		switch sp.Kind {
		case dtrace.KindAttempt:
			legs[sp.Attrs["leg"]] = sp
		case dtrace.KindCall:
			call = sp
		}
	}
	if call.Attrs["hedged"] != "true" || call.Attrs["hedge_won"] != "true" {
		t.Errorf("call span attrs = %v, want hedged=true hedge_won=true", call.Attrs)
	}
	p, ok := legs["primary"]
	if !ok || p.Attrs["outcome"] != "abandoned" {
		t.Errorf("primary leg = %+v, want outcome=abandoned", p.Attrs)
	}
	h, ok := legs["hedge"]
	if !ok || h.Attrs["outcome"] != "ok" {
		t.Errorf("hedge leg = %+v, want outcome=ok", h.Attrs)
	}
	if p.Parent != call.ID || h.Parent != call.ID {
		t.Error("attempt legs are not children of the call span")
	}
	if call.Parent != root.Context().Span.String() {
		t.Errorf("call span parent = %s, want the request root", call.Parent)
	}
}

// TestHealthProberRecoversPeer: a tripped breaker with an hour-long cooldown
// must still recover promptly once /healthz answers, proving recovery is
// health-check driven rather than cooldown driven.
func TestHealthProberRecoversPeer(t *testing.T) {
	var healthy atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/healthz") {
			if healthy.Load() {
				w.Write([]byte("ok\n"))
			} else {
				http.Error(w, "down", http.StatusServiceUnavailable)
			}
			return
		}
		if !healthy.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c := fastClient(t, ClientOptions{
		Peers:          []string{ts.URL},
		MaxAttempts:    1,
		HealthInterval: 5 * time.Millisecond,
		Breaker:        BreakerOptions{ConsecutiveFailures: 1, Cooldown: time.Hour, SuccessesToClose: 1},
	})
	var out struct{}
	if _, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out); err == nil {
		t.Fatal("call to a down peer succeeded")
	}
	if c.peers[0].breaker.State() != Open {
		t.Fatal("breaker did not trip")
	}

	healthy.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for c.peers[0].breaker.State() == Open {
		if time.Now().After(deadline) {
			t.Fatal("health prober never recovered the breaker")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.PostJSON(context.Background(), "/x", struct{}{}, &out); err != nil {
		t.Fatalf("call after recovery failed: %v", err)
	}
	if got := c.Metrics().CounterValue("farm.health_recoveries"); got < 1 {
		t.Error("health_recoveries not counted")
	}
}
