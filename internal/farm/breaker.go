// Package farm is the fault-tolerance layer that turns maccd replicas into
// a compile farm. It provides the peer cache-lookup protocol (replicas
// consult each other's content-addressed caches before compiling, every
// answer revalidated by checksum and reparse), a resilient HTTP client
// (per-attempt timeouts, exponential backoff with jitter, hedged requests
// driven by observed p99 latency, and per-peer circuit breakers with
// health-check-driven recovery), and the wire types shared by maccd,
// cmd/macc -server, and cmd/loadgen.
//
// The package takes the paper's stance one layer up: just as a coalesced
// access must be proven safe before it replaces narrow ones, a degraded
// replica must be proven unable to corrupt a result — every remote answer
// is either verified byte-for-byte or silently discarded in favour of a
// local compile. Failure degrades latency, never correctness.
package farm

import (
	"fmt"
	"sync"
	"time"
)

// BreakerState is one of the classic three circuit-breaker states.
type BreakerState int32

const (
	// Closed passes traffic and records outcomes.
	Closed BreakerState = iota
	// Open fails fast: the peer is presumed down until the cooldown
	// elapses or a health probe succeeds.
	Open
	// HalfOpen admits one probe request at a time; enough consecutive
	// successes close the breaker, any failure reopens it.
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", int32(s))
}

// BreakerOptions tunes a Breaker. Zero values select the defaults.
type BreakerOptions struct {
	// ConsecutiveFailures trips the breaker regardless of rate
	// (default 5). Timeout storms trip through this path.
	ConsecutiveFailures int
	// ErrorRate trips the breaker when the failure fraction over the
	// rolling window reaches it, once MinSamples outcomes are recorded
	// (default 0.5).
	ErrorRate float64
	// Window is the rolling outcome window size (default 20).
	Window int
	// MinSamples gates the error-rate trip (default 10).
	MinSamples int
	// Cooldown is how long an open breaker waits before letting one
	// probe through (default 1s). A successful health check shortcuts
	// the wait.
	Cooldown time.Duration
	// SuccessesToClose is how many consecutive half-open probe successes
	// close the breaker (default 2).
	SuccessesToClose int
	// Clock is injectable for tests (default time.Now).
	Clock func() time.Time
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.ConsecutiveFailures <= 0 {
		o.ConsecutiveFailures = 5
	}
	if o.ErrorRate <= 0 {
		o.ErrorRate = 0.5
	}
	if o.Window <= 0 {
		o.Window = 20
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 10
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.SuccessesToClose <= 0 {
		o.SuccessesToClose = 2
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// Breaker is a per-peer circuit breaker. The contract is Allow-then-Record:
// every Allow() == true must be paired with exactly one Record(ok) or
// Cancel() call. Cancel releases an admission without an outcome (used for
// hedged requests abandoned after the other leg won — an abandoned request
// says nothing about the peer's health). All methods are safe for
// concurrent use; in the half-open state at most one admission is
// outstanding at a time, so concurrent callers cannot double-probe a
// recovering peer.
type Breaker struct {
	mu   sync.Mutex
	opts BreakerOptions

	state       BreakerState
	consecFails int
	window      []bool // ring buffer of outcomes, true = failure
	windowIdx   int
	windowLen   int
	openedAt    time.Time
	probing     bool // half-open: a probe admission is outstanding
	probeOKs    int
	trips       int64
}

// NewBreaker builds a closed breaker.
func NewBreaker(opts BreakerOptions) *Breaker {
	opts = opts.withDefaults()
	return &Breaker{opts: opts, window: make([]bool, opts.Window)}
}

// State reports the current state (open breakers past their cooldown still
// report Open until an Allow transitions them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips reports how many times the breaker has tripped to Open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Allow reports whether a request may be sent to the peer. In the
// half-open state exactly one admission is outstanding at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.opts.Clock().Sub(b.openedAt) < b.opts.Cooldown {
			return false
		}
		b.state = HalfOpen
		b.probeOKs = 0
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record reports the outcome of an admitted request.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		if !ok {
			b.trip()
			return
		}
		b.probeOKs++
		if b.probeOKs >= b.opts.SuccessesToClose {
			b.reset()
		}
	case Closed:
		if ok {
			b.consecFails = 0
		} else {
			b.consecFails++
		}
		b.push(!ok)
		if b.consecFails >= b.opts.ConsecutiveFailures {
			b.trip()
			return
		}
		if b.windowLen >= b.opts.MinSamples && b.failureRate() >= b.opts.ErrorRate {
			b.trip()
		}
	case Open:
		// A late outcome from before the trip; nothing to learn.
	}
}

// Cancel releases an admission without recording an outcome.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// HealthOK is the health prober's recovery signal: an open breaker moves
// to half-open immediately (skipping the remaining cooldown), so real
// traffic can probe the recovered peer.
func (b *Breaker) HealthOK() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open {
		b.state = HalfOpen
		b.probeOKs = 0
		b.probing = false
	}
}

// trip moves to Open. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.opts.Clock()
	b.probing = false
	b.trips++
}

// reset moves to Closed with a clean window. Caller holds b.mu.
func (b *Breaker) reset() {
	b.state = Closed
	b.consecFails = 0
	b.windowIdx, b.windowLen = 0, 0
	b.probing = false
}

// push records one outcome in the rolling window. Caller holds b.mu.
func (b *Breaker) push(failed bool) {
	b.window[b.windowIdx] = failed
	b.windowIdx = (b.windowIdx + 1) % len(b.window)
	if b.windowLen < len(b.window) {
		b.windowLen++
	}
}

// failureRate is the failure fraction over the window. Caller holds b.mu.
func (b *Breaker) failureRate() float64 {
	var fails int
	for i := 0; i < b.windowLen; i++ {
		if b.window[i] {
			fails++
		}
	}
	return float64(fails) / float64(b.windowLen)
}
