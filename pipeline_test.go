package macc_test

import (
	"strings"
	"testing"

	"macc"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/rtl"
)

const dotSrc = `
int dotproduct(short a[], short b[], int n) {
	int c, i;
	c = 0;
	for (i = 0; i < n; i++)
		c += a[i] * b[i];
	return c;
}
`

func dotWant(a, b []int64) int64 {
	var w int64
	for i := range a {
		w += a[i] * b[i]
	}
	return w
}

func TestCoalescedDotProductCorrect(t *testing.T) {
	for _, n := range []int64{0, 1, 3, 4, 7, 8, 16, 33} {
		prog, err := macc.Compile(dotSrc, macc.DefaultConfig())
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		s := prog.NewSim(1 << 16)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(i*3 - 7)
			b[i] = int64(11 - i)
		}
		s.WriteInts(0, rtl.W2, a)
		s.WriteInts(4096, rtl.W2, b)
		res, err := s.Run("dotproduct", 0, 4096, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res.Ret != dotWant(a, b) {
			t.Errorf("n=%d: got %d, want %d", n, res.Ret, dotWant(a, b))
		}
	}
}

func TestCoalescingReducesMemRefs(t *testing.T) {
	base, err := macc.Compile(dotSrc, macc.BaselineConfig(machine.Alpha()))
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	co, err := macc.Compile(dotSrc, macc.Config{
		Machine: machine.Alpha(), Optimize: true, Unroll: true, Schedule: true,
		Coalesce: core.Options{Loads: true, Stores: true},
	})
	if err != nil {
		t.Fatalf("coalesced: %v", err)
	}
	t.Logf("reports: %+v", co.Reports)
	t.Logf("unrolled: %v", co.Unrolled)

	const n = 4096
	runOne := func(p *macc.Program) (int64, int64, int64) {
		s := p.NewSim(1 << 20)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(i % 97)
			b[i] = int64(i % 89)
		}
		s.WriteInts(0, rtl.W2, a)
		s.WriteInts(1<<16, rtl.W2, b)
		res, err := s.Run("dotproduct", 0, 1<<16, n)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Ret, res.MemRefs(), res.Cycles
	}
	rb, mb, cb := runOne(base)
	rc, mc, cc := runOne(co)
	if rb != rc {
		t.Fatalf("results differ: %d vs %d", rb, rc)
	}
	t.Logf("baseline: refs=%d cycles=%d; coalesced: refs=%d cycles=%d", mb, cb, mc, cc)
	// The paper: 2n refs -> n/2 refs, a 75 percent saving.
	if mc > mb/3 {
		t.Errorf("expected ~75%% fewer refs: baseline %d, coalesced %d", mb, mc)
	}
	if cc >= cb {
		t.Errorf("coalesced should be faster on alpha: %d vs %d cycles", cc, cb)
	}
}

// TestCompiledOutputParses: every function the full pipeline emits must
// round-trip through the textual RTL parser (print -> parse -> print is a
// fixpoint), so .rtl dumps are always loadable by cmd/macc.
func TestCompiledOutputParses(t *testing.T) {
	srcs := []string{dotSrc, `
		void f(unsigned char *a, unsigned char *b, unsigned char *o, int n) {
			int i;
			for (i = 0; i < n; i++) o[i] = a[i] + b[i];
		}`}
	for _, m := range machine.All() {
		for _, src := range srcs {
			p, err := macc.Compile(src, macc.Config{
				Machine: m, Optimize: true, Unroll: true, Schedule: true,
				Coalesce: core.Options{Loads: true, Stores: true},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range p.RTL.Fns {
				printed := f.String()
				f2, err := rtl.ParseFn(printed)
				if err != nil {
					t.Fatalf("%s: %v\n%s", m.Name, err, printed)
				}
				if got := f2.String(); got != printed {
					t.Errorf("%s: round trip differs", m.Name)
				}
			}
		}
	}
}

// TestFigure1Structure pins the shape of the coalesced dot product the
// paper's Figure 1c shows: exactly two quadword loads in the coalesced
// body, feeding signed shortword extracts at offsets 0, 2, 4, 6.
func TestFigure1Structure(t *testing.T) {
	p, err := macc.Compile(dotSrc, macc.Config{
		Machine: machine.Alpha(), Optimize: true, Unroll: true,
		Coalesce: core.Options{Loads: true, Stores: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := p.Fn("dotproduct")
	var body *rtl.Block
	for _, b := range f.Blocks {
		if strings.Contains(b.Name, "body") && strings.Contains(b.Name, "coalesced") {
			body = b
		}
	}
	if body == nil {
		t.Fatal("no coalesced body block")
	}
	wideLoads, extracts := 0, map[int64]int{}
	for _, in := range body.Instrs {
		switch in.Op {
		case rtl.Load:
			if in.Width != rtl.W8 {
				t.Errorf("narrow load survives in coalesced body: %s", in)
			}
			wideLoads++
		case rtl.Extract:
			if in.Width != rtl.W2 || !in.Signed {
				t.Errorf("extract has wrong shape: %s", in)
			}
			off, _ := in.B.IsConst()
			extracts[off]++
		}
	}
	if wideLoads != 2 {
		t.Errorf("coalesced body has %d wide loads, want 2 (one per array)", wideLoads)
	}
	for _, off := range []int64{0, 2, 4, 6} {
		if extracts[off] != 2 {
			t.Errorf("offset %d extracted %d times, want 2", off, extracts[off])
		}
	}
}
