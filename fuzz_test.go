package macc_test

// Fuzz targets. Run with e.g.
//
//	go test -fuzz FuzzMiniCFrontEnd -fuzztime 30s .
//
// In plain `go test` runs only the seed corpus executes.

import (
	"bytes"
	"testing"

	"macc"
	"macc/internal/core"
	"macc/internal/faultinject"
	"macc/internal/machine"
	"macc/internal/pipeline"
	"macc/internal/rtl"
	"macc/internal/rtlgen"
	"macc/internal/sim"
)

// FuzzMiniCFrontEnd feeds arbitrary text to the front end: it must either
// return an error or produce RTL that passes the verifier — never panic.
func FuzzMiniCFrontEnd(f *testing.F) {
	seeds := []string{
		"int f() { return 0; }",
		"int f(short a[], int n) { int i, s = 0; for (i=0;i<n;i++) s += a[i]; return s; }",
		"void g(char *p) { *p = 'x'; }",
		"int f() { return 1 ? 2 : 3; }",
		"long h(long a) { do { a--; } while (a > 0); return a; }",
		"int f( { }",
		"unsigned long u(unsigned x) { return x >> 3; }",
		"int f() { int x = 08; }",
		"/* unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := macc.Compile(src, macc.Config{Machine: machine.Alpha(), Optimize: true})
		if err != nil {
			return
		}
		for _, fn := range prog.RTL.Fns {
			if verr := fn.Verify(); verr != nil {
				t.Fatalf("accepted source produced invalid RTL: %v", verr)
			}
		}
	})
}

// FuzzRTLParser feeds arbitrary text to the RTL parser; accepted inputs
// must verify and reprint stably.
func FuzzRTLParser(f *testing.F) {
	f.Add("func f(r0) {\nentry:\n\tret r0\n}")
	f.Add("func f() {\nentry:\n\tr0 = M.2s[r1+4]\n\tret r0\n}")
	f.Add("func f() {\nentry:\n\tjump loop\nloop:\n\tjump loop\n}")
	f.Fuzz(func(t *testing.T, src string) {
		fn, err := rtl.ParseFn(src)
		if err != nil {
			return
		}
		printed := fn.String()
		fn2, err := rtl.ParseFn(printed)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\n%s", err, printed)
		}
		if fn2.String() != printed {
			t.Fatal("print/parse/print is not a fixpoint")
		}
	})
}

// FuzzPipelinePreservation drives the full optimizing pipeline with
// generator seeds: the optimized compile of a generated program must match
// the unoptimized interpretation bit for bit.
func FuzzPipelinePreservation(f *testing.F) {
	for s := int64(0); s < 12; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		gen, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := machine.M68030()
		run := func(fn *rtl.Fn) (int64, []byte) {
			s := sim.New(rtl.NewProgram(fn), m, rtlgen.MemWindow*2)
			s.Fuel = 1 << 22
			res, err := s.Run("f", 11, 22, 33)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res.Ret, s.Mem[:rtlgen.MemWindow]
		}
		r1, m1 := run(gen)
		optimized := gen.Clone()
		p, err := macc.CompileRTL(rtl.NewProgram(optimized), macc.Config{
			Machine: m, Optimize: true, Unroll: true, Schedule: true,
			Coalesce: core.Options{Loads: true, Stores: true},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fn2, _ := p.Fn("f")
		r2, m2 := run(fn2)
		if r1 != r2 || !bytes.Equal(m1, m2) {
			t.Fatalf("seed %d: pipeline changed behaviour (%d vs %d)", seed, r1, r2)
		}
	})
}

// FuzzCompile is the hardened-pipeline fuzz target: it injects a
// deterministic fault (panic or structural RTL corruption) into an
// arbitrary pass while compiling a generated program, and asserts the
// resilience contract — the non-strict compile never fails, the degraded
// output behaves bit-identically to the unoptimized build, and the
// diagnostics attribute the sabotaged pass.
func FuzzCompile(f *testing.F) {
	for s := int64(0); s < 8; s++ {
		f.Add(s, uint8(s), uint8(s))
	}
	f.Fuzz(func(t *testing.T, seed int64, passRaw, kindRaw uint8) {
		gen, err := rtlgen.Generate(seed&63, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		m := machine.M68030()
		cfg := macc.Config{
			Machine: m, Optimize: true, Unroll: true, Schedule: true,
			Coalesce: core.Options{Loads: true, Stores: true},
		}
		passes := macc.Passes(cfg)
		// Structural kinds only: FlipOp is a silent miscompile by design
		// and legitimately changes behaviour.
		kinds := []faultinject.Kind{
			faultinject.Panic, faultinject.ClobberReg,
			faultinject.DropTerminator, faultinject.RetargetBranch,
		}
		inj := &faultinject.Injector{
			Pass: passes[int(passRaw)%len(passes)],
			Kind: kinds[int(kindRaw)%len(kinds)],
			Seed: seed,
		}
		cfg.WrapPass = inj.Hook()

		want, err := pipeline.Behavior(rtl.NewProgram(gen), m, rtlgen.MemWindow*2, "f", [][]int64{{11, 22, 33}})
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		p, err := macc.CompileRTL(rtl.NewProgram(gen.Clone()), cfg)
		if err != nil {
			t.Fatalf("seed %d: non-strict compile failed: %v", seed, err)
		}
		got, err := pipeline.Behavior(p.RTL, m, rtlgen.MemWindow*2, "f", [][]int64{{11, 22, 33}})
		if err != nil {
			t.Fatalf("seed %d: degraded program trapped: %v", seed, err)
		}
		if got != want {
			t.Fatalf("seed %d: degraded program diverges from unoptimized build", seed)
		}
		if inj.Fired() {
			failed := p.Diagnostics.FailedPasses()
			if len(failed) == 0 || failed[0] != inj.Pass {
				t.Fatalf("seed %d: diagnostics %v do not attribute %q", seed, failed, inj.Pass)
			}
		}
	})
}

// FuzzEvalExtractInsert checks the extract/insert algebra exhaustively
// against a byte-array model.
func FuzzEvalExtractInsert(f *testing.F) {
	f.Add(int64(0x0123456789ABCDEF), int64(-1), uint8(2), uint8(1))
	f.Fuzz(func(t *testing.T, wide, val int64, offRaw, wRaw uint8) {
		ws := []rtl.Width{rtl.W1, rtl.W2, rtl.W4}
		w := ws[int(wRaw)%len(ws)]
		off := int64(offRaw) % (8 - int64(w) + 1)

		// Byte-array model.
		var bytesOf [8]byte
		for i := 0; i < 8; i++ {
			bytesOf[i] = byte(uint64(wide) >> (8 * uint(i)))
		}
		for i := 0; i < int(w); i++ {
			bytesOf[off+int64(i)] = byte(uint64(val) >> (8 * uint(i)))
		}
		var wantIns uint64
		for i := 7; i >= 0; i-- {
			wantIns = wantIns<<8 | uint64(bytesOf[i])
		}
		if got := rtl.EvalInsert(wide, val, off, w); uint64(got) != wantIns {
			t.Fatalf("insert mismatch: got %x want %x", got, wantIns)
		}
		got := rtl.EvalExtract(int64(wantIns), off, w, false)
		if uint64(got) != uint64(val)&w.Mask() {
			t.Fatalf("extract mismatch: got %x", got)
		}
	})
}
