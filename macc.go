// Package macc is a retargetable optimizing back end reproducing "Memory
// Access Coalescing: A Technique for Eliminating Redundant Memory Accesses"
// (Davidson & Jinturkar, PLDI 1994). It compiles a C subset to a register
// transfer IR, applies the classic vpo-style optimization pipeline — loop
// invariant code motion, induction-variable strength reduction and test
// replacement, loop unrolling with a remainder loop, and list scheduling —
// and then performs the paper's contribution: coalescing consecutive narrow
// memory references into wide ones guarded by run-time alias and alignment
// checks. Compiled programs run on a cycle-accurate-in-spirit simulator of
// the paper's three evaluation targets (DEC Alpha, Motorola 88100, Motorola
// 68030), which reports cycles and memory reference counts.
//
// Quick start:
//
//	prog, err := macc.Compile(src, macc.Config{
//		Machine:  machine.Alpha(),
//		Coalesce: core.DefaultOptions(),
//	})
//	s := prog.NewSim(1 << 20)
//	res, err := s.Run("dotproduct", aAddr, bAddr, n)
package macc

import (
	"fmt"

	"macc/internal/cfg"
	"macc/internal/core"
	"macc/internal/dataflow"
	"macc/internal/iv"
	"macc/internal/machine"
	"macc/internal/minic"
	"macc/internal/opt"
	"macc/internal/regalloc"
	"macc/internal/rtl"
	"macc/internal/sched"
	"macc/internal/sim"
	"macc/internal/unroll"
)

// Config controls the compilation pipeline.
type Config struct {
	// Machine is the target description; defaults to the Alpha model.
	Machine *machine.Machine
	// Optimize enables the machine-independent clean-up passes. Without it
	// the pipeline stops after code generation (useful for debugging).
	Optimize bool
	// Unroll enables loop unrolling. UnrollFactor forces a factor; zero
	// selects the paper's heuristic (word width over narrowest reference,
	// capped by the instruction cache).
	Unroll       bool
	UnrollFactor int
	// Coalesce selects the memory access coalescing mode. The zero value
	// disables the transformation.
	Coalesce core.Options
	// Schedule runs the per-block list scheduler.
	Schedule bool
	// Registers, when non-zero, runs the linear-scan register allocator
	// with a register file of that size after scheduling (spill code is
	// therefore unscheduled, as in compilers that allocate late). Zero
	// keeps virtual registers, modelling an unbounded file.
	Registers int
	// DumpStage, when non-nil, receives the RTL after each pipeline stage
	// (stage name, function); used by cmd/macc -dump.
	DumpStage func(stage string, f *rtl.Fn)
}

// DefaultConfig enables everything on the Alpha model, mirroring the
// paper's "vpcc/vpo -O + coalescing" configuration.
func DefaultConfig() Config {
	return Config{
		Machine:  machine.Alpha(),
		Optimize: true,
		Unroll:   true,
		Coalesce: core.DefaultOptions(),
		Schedule: true,
	}
}

// BaselineConfig is the paper's "vpcc/vpo -O" column: everything except
// coalescing (loops still unrolled so the comparison isolates coalescing).
func BaselineConfig(m *machine.Machine) Config {
	return Config{Machine: m, Optimize: true, Unroll: true, Schedule: true}
}

// NativeConfig stands in for the native "cc -O" column: a credible but
// weaker compiler (no scheduling, no unrolling).
func NativeConfig(m *machine.Machine) Config {
	return Config{Machine: m, Optimize: true}
}

// Program is a compiled program bound to a machine model.
type Program struct {
	RTL     *rtl.Program
	Machine *machine.Machine
	// Reports holds one entry per loop the coalescer examined.
	Reports []core.LoopReport
	// Unrolled maps function names to the factors applied.
	Unrolled map[string]int
}

// Compile runs the full pipeline over a mini-C translation unit.
func Compile(src string, cfg Config) (*Program, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	rp, err := minic.Compile(src)
	if err != nil {
		return nil, err
	}
	p := &Program{RTL: rp, Machine: cfg.Machine, Unrolled: make(map[string]int)}
	for _, f := range rp.Fns {
		if err := p.optimizeFn(f, cfg); err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return p, nil
}

// CompileRTL applies the pipeline to an already-built RTL program (used by
// tests and by callers constructing IR directly).
func CompileRTL(rp *rtl.Program, cfg Config) (*Program, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	p := &Program{RTL: rp, Machine: cfg.Machine, Unrolled: make(map[string]int)}
	for _, f := range rp.Fns {
		if err := p.optimizeFn(f, cfg); err != nil {
			return nil, fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return p, nil
}

func (p *Program) dump(cfg Config, stage string, f *rtl.Fn) {
	if cfg.DumpStage != nil {
		cfg.DumpStage(stage, f)
	}
}

func (p *Program) optimizeFn(f *rtl.Fn, cfg Config) error {
	p.dump(cfg, "codegen", f)
	if !cfg.Optimize {
		return f.Verify()
	}
	opt.Clean(f)
	opt.ThreadJumps(f)
	p.dump(cfg, "clean", f)

	// Loop-invariant code motion, innermost-first, iterated because
	// hoisting can expose more loops' invariants.
	for i := 0; i < 4; i++ {
		ensurePreheaders(f)
		g := cfg2(f)
		loops := g.FindLoops()
		for _, l := range loops {
			g.EnsurePreheader(l)
		}
		changed := false
		for _, l := range loops {
			changed = opt.HoistInvariants(f, g, l) || changed
		}
		if changed {
			opt.Clean(f)
		} else {
			break
		}
	}
	p.dump(cfg, "licm", f)

	// Induction-variable strength reduction and test replacement: gives
	// memory references the base+displacement shape and frees the counter.
	{
		ensurePreheaders(f)
		g := cfg2(f)
		loops := g.FindLoops()
		for _, l := range loops {
			g.EnsurePreheader(l)
			du := dataflow.ComputeDefUse(f)
			info := iv.Analyze(g, l, du)
			if ptrs := info.StrengthReduce(f); len(ptrs) > 0 {
				info.ReplaceTest(f, ptrs)
			}
		}
		opt.EliminateDeadIVs(f)
		opt.Clean(f)
	}
	p.dump(cfg, "strength-reduce", f)

	if cfg.Unroll {
		ensurePreheaders(f)
		g := cfg2(f)
		for _, l := range g.FindLoops() {
			g.EnsurePreheader(l)
			c, ok := unroll.Shape(l)
			if !ok {
				continue
			}
			du := dataflow.ComputeDefUse(f)
			info := iv.Analyze(g, l, du)
			factor := cfg.UnrollFactor
			if factor == 0 {
				factor = unroll.ChooseFactor(cfg.Machine, c, info)
			}
			if factor < 2 {
				continue
			}
			if _, err := unroll.Unroll(f, c, info, factor); err == nil {
				p.Unrolled[f.Name] = factor
			}
		}
		opt.NormalizeAddresses(f)
		opt.Clean(f)
		p.dump(cfg, "unroll", f)
	}

	if cfg.Coalesce.Loads || cfg.Coalesce.Stores {
		reports := core.CoalesceMemoryAccesses(f, cfg.Machine, cfg.Coalesce)
		p.Reports = append(p.Reports, reports...)
		opt.Clean(f)
		p.dump(cfg, "coalesce", f)
	}

	if cfg.Schedule {
		sched.ScheduleFn(f, cfg.Machine)
		p.dump(cfg, "schedule", f)
	}
	if cfg.Registers > 0 {
		if _, err := regalloc.Run(f, cfg.Registers); err != nil {
			return err
		}
		p.dump(cfg, "regalloc", f)
	}
	return f.Verify()
}

// ensurePreheaders materializes preheaders for every natural loop so later
// analyses see a stable shape.
func ensurePreheaders(f *rtl.Fn) {
	g := cfg2(f)
	for _, l := range g.FindLoops() {
		g.EnsurePreheader(l)
	}
}

func cfg2(f *rtl.Fn) *cfg.Graph { return cfg.New(f) }

// NewSim builds a simulator for the compiled program with memBytes of RAM.
func (p *Program) NewSim(memBytes int) *sim.Sim {
	return sim.New(p.RTL, p.Machine, memBytes)
}

// Fn returns the named compiled function for inspection.
func (p *Program) Fn(name string) (*rtl.Fn, bool) { return p.RTL.Lookup(name) }
