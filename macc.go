// Package macc is a retargetable optimizing back end reproducing "Memory
// Access Coalescing: A Technique for Eliminating Redundant Memory Accesses"
// (Davidson & Jinturkar, PLDI 1994). It compiles a C subset to a register
// transfer IR, applies the classic vpo-style optimization pipeline — loop
// invariant code motion, induction-variable strength reduction and test
// replacement, loop unrolling with a remainder loop, and list scheduling —
// and then performs the paper's contribution: coalescing consecutive narrow
// memory references into wide ones guarded by run-time alias and alignment
// checks. Compiled programs run on a cycle-accurate-in-spirit simulator of
// the paper's three evaluation targets (DEC Alpha, Motorola 88100, Motorola
// 68030), which reports cycles and memory reference counts.
//
// Quick start:
//
//	prog, err := macc.Compile(src, macc.Config{
//		Machine:  machine.Alpha(),
//		Coalesce: core.DefaultOptions(),
//	})
//	s := prog.NewSim(1 << 20)
//	res, err := s.Run("dotproduct", aAddr, bAddr, n)
package macc

import (
	"context"
	"fmt"
	"strings"

	"macc/internal/ccache"
	"macc/internal/cfg"
	"macc/internal/core"
	"macc/internal/dataflow"
	"macc/internal/iv"
	"macc/internal/machine"
	"macc/internal/minic"
	"macc/internal/opt"
	"macc/internal/pipeline"
	"macc/internal/regalloc"
	"macc/internal/rtl"
	"macc/internal/sched"
	"macc/internal/sim"
	"macc/internal/telemetry"
	"macc/internal/telemetry/dtrace"
	"macc/internal/unroll"
)

// Config controls the compilation pipeline.
type Config struct {
	// Machine is the target description; defaults to the Alpha model.
	Machine *machine.Machine
	// Optimize enables the machine-independent clean-up passes. Without it
	// the pipeline stops after code generation (useful for debugging).
	Optimize bool
	// Unroll enables loop unrolling. UnrollFactor forces a factor; zero
	// selects the paper's heuristic (word width over narrowest reference,
	// capped by the instruction cache).
	Unroll       bool
	UnrollFactor int
	// Coalesce selects the memory access coalescing mode. The zero value
	// disables the transformation.
	Coalesce core.Options
	// Schedule runs the per-block list scheduler.
	Schedule bool
	// Registers, when non-zero, runs the linear-scan register allocator
	// with a register file of that size after scheduling (spill code is
	// therefore unscheduled, as in compilers that allocate late). Zero
	// keeps virtual registers, modelling an unbounded file.
	Registers int
	// DumpStage, when non-nil, receives the RTL after each pipeline stage
	// (stage name, function); used by cmd/macc -dump.
	DumpStage func(stage string, f *rtl.Fn)
	// Strict makes the first pass failure (panic, pass error, or verifier
	// rejection of the pass's output) abort compilation with a
	// *pipeline.PassError. The default rolls the function back to its
	// last-known-good form, records the incident in Program.Diagnostics,
	// and continues with the remaining passes (degraded mode).
	Strict bool
	// GraphPipeline forces the optimizer to run on the pointer-graph IR for
	// every pass. By default the cold path flattens the front end's output
	// once and runs the pipeline natively on the struct-of-arrays form
	// (bridging the few passes not yet ported per function); the two modes
	// produce byte-identical programs — this switch exists for differential
	// testing and as an escape hatch. It never enters the cache fingerprint,
	// because it cannot change the compiled output.
	GraphPipeline bool
	// WrapPass, when non-nil, wraps every optimization pass before it
	// runs; fault injection (internal/faultinject) and tracing hook in
	// here.
	WrapPass func(pipeline.Pass) pipeline.Pass
	// Telemetry, when non-nil, receives the compile's observability
	// stream: per-pass spans with IR deltas (exportable as a Chrome
	// trace), optimization remarks from the coalescer, unroller, and
	// induction-variable analysis, and the static metrics counters. Wire
	// the same recorder's Registry into sim.AttachMetrics to see static
	// decisions and dynamic memory traffic side by side.
	Telemetry *telemetry.Recorder
	// Unit names the translation unit being compiled — the kernel or source
	// file — and is stamped onto every optimization remark, completing the
	// remark's stable identity key (unit:fn/loop) that corpus-wide reports
	// diff on. Purely observational: it never affects compilation output or
	// the cache key.
	Unit string
	// Cache, when non-nil, memoizes whole compilations content-addressed
	// by (source text, configuration, machine): byte-identical inputs are
	// compiled once and every further Compile is served from the cache's
	// memory or disk tier, with concurrent identical compiles
	// deduplicated singleflight-style. A cache hit returns a program
	// observably identical to a cold compile (same printed RTL, same
	// simulated behaviour) but skips the pass pipeline, so per-pass
	// telemetry spans and remarks are not re-emitted; the cache's own
	// counters (ccache.mem_hits, ...) record the hit instead. The cache
	// is bypassed when DumpStage or WrapPass is set (those observe or
	// perturb individual passes and need the real pipeline), and compiles
	// that degrade (Diagnostics non-empty) are returned but never stored.
	Cache *ccache.Cache
	// Tracer, when non-nil together with Telemetry, links the compile's
	// per-pass pipeline spans into the distributed trace carried by the
	// CompileCtx context (each pass becomes a child of the span context in
	// ctx — typically the cache's compute span, or the server's ingress
	// span for uncached compiles). Like Telemetry, it never affects the
	// cache key or the compiled output.
	Tracer *dtrace.Tracer
}

// emitter returns the remark sink for the configured recorder (a Nop when
// telemetry is off), so passes emit unconditionally. Remarks are stamped
// with the configured Unit on their way through.
func (cfg Config) emitter() telemetry.Emitter {
	if cfg.Telemetry != nil {
		return telemetry.WithUnit(cfg.Telemetry, cfg.Unit)
	}
	return telemetry.Nop{}
}

// DefaultConfig enables everything on the Alpha model, mirroring the
// paper's "vpcc/vpo -O + coalescing" configuration.
func DefaultConfig() Config {
	return Config{
		Machine:  machine.Alpha(),
		Optimize: true,
		Unroll:   true,
		Coalesce: core.DefaultOptions(),
		Schedule: true,
	}
}

// BaselineConfig is the paper's "vpcc/vpo -O" column: everything except
// coalescing (loops still unrolled so the comparison isolates coalescing).
func BaselineConfig(m *machine.Machine) Config {
	return Config{Machine: m, Optimize: true, Unroll: true, Schedule: true}
}

// NativeConfig stands in for the native "cc -O" column: a credible but
// weaker compiler (no scheduling, no unrolling).
func NativeConfig(m *machine.Machine) Config {
	return Config{Machine: m, Optimize: true}
}

// Program is a compiled program bound to a machine model.
type Program struct {
	RTL     *rtl.Program
	Machine *machine.Machine
	// Flat is the program's flat (struct-of-arrays) image when one is
	// available — every cache-served program carries one, as does the cold
	// compile that populated the cache. When set, NewSim predecodes from it
	// directly (sim.NewFlat), skipping the pointer-graph walk; RTL is then
	// a private materialized view of the same program. Nil for uncached
	// compiles, whose RTL is the pipeline's live graph.
	Flat *rtl.FlatProgram
	// Reports holds one entry per loop the coalescer examined.
	Reports []core.LoopReport
	// Unrolled maps function names to the factors applied.
	Unrolled map[string]int
	// Diagnostics records every pass that was rolled back during a
	// non-strict compile; empty when every pass ran cleanly.
	Diagnostics *pipeline.Diagnostics
	// Telemetry is the recorder the program was compiled with (nil when
	// observability was off). NewSim wires its registry into the
	// simulator, so static pipeline counters and dynamic run counters
	// accumulate side by side.
	Telemetry *telemetry.Recorder
	// Cached reports that this program was served from Config.Cache (a
	// memory/disk hit or a shared in-flight compile) rather than compiled
	// by this call.
	Cached bool
}

// Compile runs the full pipeline over a mini-C translation unit. With
// Config.Cache set, byte-identical (source, config, machine) compiles are
// served from the content-addressed cache instead of re-running the
// front end and pass pipeline.
func Compile(src string, cfg Config) (*Program, error) {
	return CompileCtx(context.Background(), src, cfg)
}

// CompileCtx is Compile with context propagation. When ctx carries a
// dtrace span context (a farm request's ingress span) and Config.Tracer is
// set, the compile's cache-tier decision, singleflight wait or compute
// span, and per-pass pipeline spans all join that request's trace.
func CompileCtx(ctx context.Context, src string, cfg Config) (*Program, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	cold := func(ctx context.Context) (*Program, error) { return compileSource(ctx, src, cfg) }
	if cfg.usesCache() {
		return compileCached(ctx, src, cfg, cold)
	}
	return cold(ctx)
}

func compileSource(ctx context.Context, src string, cfg Config) (*Program, error) {
	rp, err := minic.Compile(src)
	if err != nil {
		return nil, err
	}
	return compileProgram(ctx, rp, cfg)
}

// CompileRTL applies the pipeline to an already-built RTL program (used by
// tests and by callers constructing IR directly). With Config.Cache set the
// compile is keyed by the program's printed text; on a hit rp is left
// untouched and the cached result is returned instead.
func CompileRTL(rp *rtl.Program, cfg Config) (*Program, error) {
	return CompileRTLCtx(context.Background(), rp, cfg)
}

// CompileRTLCtx is CompileRTL with context propagation (see CompileCtx).
func CompileRTLCtx(ctx context.Context, rp *rtl.Program, cfg Config) (*Program, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	if cfg.usesCache() {
		return compileCached(ctx, rp.String(), cfg, func(ctx context.Context) (*Program, error) {
			return compileProgram(ctx, rp, cfg)
		})
	}
	return compileProgram(ctx, rp, cfg)
}

func compileProgram(ctx context.Context, rp *rtl.Program, cfg Config) (*Program, error) {
	p := newProgram(rp, cfg.Machine)
	p.Telemetry = cfg.Telemetry
	if cfg.useFlatPipeline() {
		if err := p.optimizeFlat(rp, cfg); err != nil {
			return nil, err
		}
	} else {
		for _, f := range rp.Fns {
			if err := p.optimizeFn(f, cfg); err != nil {
				return nil, fmt.Errorf("%s: %w", f.Name, err)
			}
		}
	}
	// Link the pipeline's per-pass spans under the request trace: children
	// of whatever span context rode in on ctx (the singleflight compute
	// span under a cache, the ingress span without one).
	if cfg.Tracer != nil && cfg.Telemetry != nil {
		dtrace.LinkRecorder(cfg.Tracer, dtrace.FromContext(ctx), cfg.Telemetry)
	}
	return p, nil
}

// usesCache reports whether this configuration may consult the compile
// cache. DumpStage and WrapPass observe or perturb individual passes, so
// their compiles must run the real pipeline every time.
func (cfg Config) usesCache() bool {
	return cfg.Cache != nil && cfg.DumpStage == nil && cfg.WrapPass == nil
}

// useFlatPipeline reports whether the cold path runs the optimizer natively
// on the flat form. DumpStage and WrapPass observe pointer-graph functions
// pass by pass, so their compiles keep the graph pipeline.
func (cfg Config) useFlatPipeline() bool {
	return cfg.Optimize && !cfg.GraphPipeline && cfg.DumpStage == nil && cfg.WrapPass == nil
}

// fingerprint renders every semantics-affecting Config field canonically;
// it is one of the three cache key components.
func (cfg Config) fingerprint() string {
	return fmt.Sprintf("opt=%t;unroll=%t;factor=%d;coalesce=%t/%t/%t/%t;sched=%t;regs=%d;strict=%t",
		cfg.Optimize, cfg.Unroll, cfg.UnrollFactor,
		cfg.Coalesce.Loads, cfg.Coalesce.Stores, cfg.Coalesce.Force,
		cfg.Coalesce.NoRuntimeChecks, cfg.Schedule, cfg.Registers, cfg.Strict)
}

// machineFingerprint renders the full machine description — capability
// flags, cache geometry, and both cost tables — so two models sharing a
// name but differing anywhere observable never share a cache key.
func machineFingerprint(m *machine.Machine) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s;word=%d;align=%t;pipe=%t;icache=%d/%d/%d;dcache=%d/%d",
		m.Name, m.WordBytes, m.MustAlign, m.Pipelined,
		m.ICacheBytes, m.BytesPerInstr, m.ICacheMissPenalty,
		m.DCacheBytes, m.DCacheMissPenalty)
	costFingerprint(&sb, &m.Sched)
	costFingerprint(&sb, &m.Exec)
	return sb.String()
}

func costFingerprint(sb *strings.Builder, c *machine.Costs) {
	fmt.Fprintf(sb, ";alu=%d,mul=%d,div=%d,x=%d,i=%d,br=%d,call=%d,xo=%d,io=%d",
		c.Alu, c.Mul, c.Div, c.Extract, c.Insert, c.Branch, c.Call,
		c.ExtractOcc, c.InsertOcc)
	for _, w := range []rtl.Width{rtl.W1, rtl.W2, rtl.W4, rtl.W8} {
		fmt.Fprintf(sb, ",l%d=%d/%d,s%d=%d/%d",
			w, c.Load[w], c.LoadOcc[w], w, c.Store[w], c.StoreOcc[w])
	}
}

// compileCached serves the compile from cfg.Cache: a hit (memory, disk, or
// a shared in-flight compile) materializes a private program from the
// cached flat image — the image itself is shared, so a hit copies nothing
// but the Unflatten slab; a miss runs cold once — concurrent identical
// compiles wait for it instead of duplicating the work — and stores the
// flat snapshot of the result. Degraded compiles are returned but never
// stored (and a caller sharing the leader's flight sees the program without
// its diagnostics).
func compileCached(ctx context.Context, keySrc string, cfg Config, cold func(context.Context) (*Program, error)) (*Program, error) {
	key := ccache.KeyOf(keySrc, cfg.fingerprint(), machineFingerprint(cfg.Machine))
	var coldProg *Program
	e, hit, err := cfg.Cache.GetOrComputeCtx(ctx, key, func(cctx context.Context) (ccache.Entry, error) {
		p, err := cold(cctx)
		if err != nil {
			return ccache.Entry{}, err
		}
		coldProg = p
		snap := ccache.Entry{
			Machine:     cfg.Machine.Name,
			Reports:     append([]core.LoopReport(nil), p.Reports...),
			Unrolled:    make(map[string]int, len(p.Unrolled)),
			Uncacheable: p.Diagnostics.Degraded(),
		}
		for k, v := range p.Unrolled {
			snap.Unrolled[k] = v
		}
		// The cache owns its entry outright: the flat image is a snapshot,
		// so no later mutation through the caller's pointer can poison it.
		// A flat-pipeline compile already holds the final image — store it
		// directly instead of re-flattening; otherwise a program the
		// flattener rejects (it should not exist past the verifier) is
		// simply not cached.
		if p.Flat != nil {
			snap.Flat = p.Flat
		} else if flat, ferr := rtl.Flatten(p.RTL); ferr == nil {
			snap.Flat = flat
			p.Flat = flat
		} else {
			snap.Uncacheable = true
		}
		return snap, nil
	})
	if err != nil {
		return nil, err
	}
	if !hit {
		return coldProg, nil
	}
	rp, err := e.Materialize()
	if err != nil {
		// A shared flight whose leader could not flatten (degenerate):
		// fall back to compiling locally.
		return cold(ctx)
	}
	if cfg.Telemetry != nil {
		cfg.Telemetry.Count("ccache.compile_hits", 1)
	}
	return &Program{
		RTL:         rp,
		Machine:     cfg.Machine,
		Flat:        e.Flat,
		Reports:     e.CloneReports(),
		Unrolled:    e.CloneUnrolled(),
		Diagnostics: &pipeline.Diagnostics{},
		Telemetry:   cfg.Telemetry,
		Cached:      true,
	}, nil
}

// FromFlat wraps an already-compiled flat program image (e.g. decoded from
// a .bin file emitted by cmd/macc -emit=bin) as a runnable Program without
// re-running the pipeline. The image is validated and materialized; the
// simulator predecodes from the flat form directly.
func FromFlat(fp *rtl.FlatProgram, m *machine.Machine) (*Program, error) {
	if m == nil {
		m = machine.Alpha()
	}
	rp, err := fp.Unflatten()
	if err != nil {
		return nil, err
	}
	p := newProgram(rp, m)
	p.Flat = fp
	return p, nil
}

func newProgram(rp *rtl.Program, m *machine.Machine) *Program {
	return &Program{RTL: rp, Machine: m, Unrolled: make(map[string]int),
		Diagnostics: &pipeline.Diagnostics{}}
}

func (p *Program) dump(cfg Config, stage string, f *rtl.Fn) {
	if cfg.DumpStage != nil {
		cfg.DumpStage(stage, f)
	}
}

// optimizeFn runs the optimization pipeline over f under the hardened pass
// manager: every stage gets panic recovery, a post-stage verification
// checkpoint, and (in non-strict mode) rollback to the last-known-good
// form with the incident recorded in p.Diagnostics.
func (p *Program) optimizeFn(f *rtl.Fn, cfg Config) error {
	p.dump(cfg, "codegen", f)
	if err := f.Verify(); err != nil {
		return err
	}
	if !cfg.Optimize {
		return nil
	}
	passes := p.passList(cfg)
	if cfg.WrapPass != nil {
		for i := range passes {
			passes[i] = cfg.WrapPass(passes[i])
		}
	}
	return pipeline.Run(f, passes, pipeline.Options{
		Strict:   cfg.Strict,
		Diags:    p.Diagnostics,
		Recorder: cfg.Telemetry,
		OnPass:   func(stage string, f *rtl.Fn) { p.dump(cfg, stage, f) },
	})
}

// passList builds the stage sequence for cfg. Side records (coalescing
// reports, unroll factors) are staged inside each pass and committed by its
// OnSuccess hook, so a rolled-back pass leaves no trace of undone work.
func (p *Program) passList(cfg Config) []pipeline.Pass {
	passes := []pipeline.Pass{
		{Name: "clean", Run: func(f *rtl.Fn) error {
			opt.Clean(f)
			opt.ThreadJumps(f)
			return nil
		}},
		// Loop-invariant code motion, innermost-first, iterated because
		// hoisting can expose more loops' invariants.
		{Name: "licm", Run: func(f *rtl.Fn) error {
			runLICM(f)
			return nil
		}},
		// Induction-variable strength reduction and test replacement:
		// gives memory references the base+displacement shape and frees
		// the counter.
		{Name: "strength-reduce", Run: func(f *rtl.Fn) error {
			runStrengthReduce(f, cfg.emitter())
			return nil
		}},
	}
	if cfg.Unroll {
		var staged map[string]int
		passes = append(passes, pipeline.Pass{
			Name: "unroll",
			Run: func(f *rtl.Fn) error {
				staged = runUnrollLoops(cfg, f)
				opt.NormalizeAddresses(f)
				opt.Clean(f)
				return nil
			},
			OnSuccess: func() {
				for name, factor := range staged {
					p.Unrolled[name] = factor
				}
			},
		})
	}
	if cfg.Coalesce.Loads || cfg.Coalesce.Stores {
		var staged []core.LoopReport
		passes = append(passes, pipeline.Pass{
			Name: "coalesce",
			Run: func(f *rtl.Fn) error {
				staged = core.CoalesceMemoryAccesses(f, cfg.Machine, cfg.Coalesce, cfg.emitter())
				opt.Clean(f)
				return nil
			},
			OnSuccess: func() { p.Reports = append(p.Reports, staged...) },
		})
	}
	if cfg.Schedule {
		passes = append(passes, pipeline.Pass{Name: "schedule", Run: func(f *rtl.Fn) error {
			sched.ScheduleFn(f, cfg.Machine)
			return nil
		}})
	}
	if cfg.Registers > 0 {
		passes = append(passes, pipeline.Pass{Name: "regalloc", Run: func(f *rtl.Fn) error {
			_, err := regalloc.Run(f, cfg.Registers)
			return err
		}})
	}
	return passes
}

// runLICM is the body of the "licm" pass, shared verbatim by the graph pass
// list and (bridged) by the flat pass list: hoist loop invariants,
// innermost-first, iterated because hoisting can expose more loops'
// invariants.
func runLICM(f *rtl.Fn) {
	for i := 0; i < 4; i++ {
		ensurePreheaders(f)
		g := cfg2(f)
		loops := g.FindLoops()
		for _, l := range loops {
			g.EnsurePreheader(l)
		}
		changed := false
		for _, l := range loops {
			changed = opt.HoistInvariants(f, g, l) || changed
		}
		if changed {
			opt.Clean(f)
		} else {
			break
		}
	}
}

// runStrengthReduce is the body of the "strength-reduce" pass, shared by both
// pass lists.
func runStrengthReduce(f *rtl.Fn, em telemetry.Emitter) {
	ensurePreheaders(f)
	g := cfg2(f)
	loops := g.FindLoops()
	for _, l := range loops {
		g.EnsurePreheader(l)
		du := dataflow.ComputeDefUse(f)
		info := iv.Analyze(g, l, du)
		em.Emit(info.Remark("strength-reduce", f.Name))
		if ptrs := info.StrengthReduce(f); len(ptrs) > 0 {
			replaced := info.ReplaceTest(f, ptrs)
			em.Count("iv.pointers_strength_reduced", int64(len(ptrs)))
			rem := telemetry.Remark{
				Kind: telemetry.Passed, Pass: "strength-reduce",
				Fn: f.Name, Loop: l.Header.Name, Name: "StrengthReduced",
				Reason: "iv:pointer-ivs-materialized",
				Args:   map[string]int64{"pointers": int64(len(ptrs))},
			}
			if replaced {
				rem.Args["test_replaced"] = 1
			}
			em.Emit(rem)
		}
	}
	opt.EliminateDeadIVs(f)
	opt.Clean(f)
}

// runUnrollLoops is the loop-replication part of the "unroll" pass, shared by
// both pass lists; the caller finishes with address normalization and a clean
// sweep on its own form. Returns the per-function factors to stage.
func runUnrollLoops(cfg Config, f *rtl.Fn) map[string]int {
	em := cfg.emitter()
	staged := make(map[string]int)
	ensurePreheaders(f)
	g := cfg2(f)
	missed := func(header, reason string) {
		em.Emit(telemetry.Remark{
			Kind: telemetry.Missed, Pass: "unroll", Fn: f.Name,
			Loop: header, Name: "NotUnrolled", Reason: reason,
		})
	}
	for _, l := range g.FindLoops() {
		g.EnsurePreheader(l)
		c, ok := unroll.Shape(l)
		if !ok {
			missed(l.Header.Name, "shape:not-canonical")
			continue
		}
		du := dataflow.ComputeDefUse(f)
		info := iv.Analyze(g, l, du)
		factor := cfg.UnrollFactor
		if factor == 0 {
			factor = unroll.ChooseFactor(cfg.Machine, c, info)
		}
		if factor < 2 {
			missed(l.Header.Name, "heuristic:factor<2")
			continue
		}
		if _, err := unroll.Unroll(f, c, info, factor); err == nil {
			staged[f.Name] = factor
			em.Count("unroll.loops", 1)
			em.Observe("unroll.factor", int64(factor))
			em.Emit(telemetry.Remark{
				Kind: telemetry.Passed, Pass: "unroll", Fn: f.Name,
				Loop: l.Header.Name, Name: "Unrolled",
				Reason: "heuristic:icache-bounded",
				Args:   map[string]int64{"factor": int64(factor)},
			})
		} else {
			missed(l.Header.Name, "shape:"+err.Error())
		}
	}
	return staged
}

// optimizeFlat is the flat-native cold path: verify every function (the same
// codegen checkpoint the graph path runs), flatten the front end's output
// once, run the pass pipeline on the struct-of-arrays form function by
// function, and materialize the pointer graph once at the end. The input
// program is left untouched; callers read the result through p.RTL, and the
// final flat image rides along on p.Flat for the cache and the simulator.
func (p *Program) optimizeFlat(rp *rtl.Program, cfg Config) error {
	for _, f := range rp.Fns {
		if err := f.Verify(); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	fp, err := rtl.Flatten(rp)
	if err != nil {
		return err
	}
	passes := p.flatPassList(cfg)
	opts := pipeline.Options{
		Strict:   cfg.Strict,
		Diags:    p.Diagnostics,
		Recorder: cfg.Telemetry,
	}
	for fi := range fp.Fns {
		if err := pipeline.RunFlat(fp, fi, passes, opts); err != nil {
			return fmt.Errorf("%s: %w", fp.Syms[fp.Fns[fi].Name], err)
		}
	}
	out, err := fp.Unflatten()
	if err != nil {
		return err
	}
	p.RTL = out
	p.Flat = fp
	return nil
}

// OptimizeFlat runs the optimization pipeline directly over an already-flat
// program image — e.g. one decoded from a .bin emitted by cmd/macc — mutating
// it in place, with no Unflatten/Materialize round trip of the whole program
// (passes not yet ported to the flat form bridge per function). The returned
// Program carries the optimized image on Flat and a materialized view on RTL.
func OptimizeFlat(fp *rtl.FlatProgram, cfg Config) (*Program, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	p := &Program{Machine: cfg.Machine, Unrolled: make(map[string]int),
		Diagnostics: &pipeline.Diagnostics{}, Telemetry: cfg.Telemetry}
	if cfg.Optimize {
		passes := p.flatPassList(cfg)
		opts := pipeline.Options{
			Strict:   cfg.Strict,
			Diags:    p.Diagnostics,
			Recorder: cfg.Telemetry,
		}
		for fi := range fp.Fns {
			if err := fp.VerifyFn(fi); err != nil {
				return nil, fmt.Errorf("%s: %w", fp.Syms[fp.Fns[fi].Name], err)
			}
			if err := pipeline.RunFlat(fp, fi, passes, opts); err != nil {
				return nil, fmt.Errorf("%s: %w", fp.Syms[fp.Fns[fi].Name], err)
			}
		}
	}
	rp, err := fp.Unflatten()
	if err != nil {
		return nil, err
	}
	p.RTL = rp
	p.Flat = fp
	return p, nil
}

// bridgeFlat adapts a graph pass body to the flat pipeline for stages not yet
// ported natively: materialize the one function, run the graph body, and
// flatten the result back into the same slot. The round trip is per function
// and per pass, never whole-program.
func bridgeFlat(run func(f *rtl.Fn) error) func(fp *rtl.FlatProgram, fi int) error {
	return func(fp *rtl.FlatProgram, fi int) error {
		f := fp.UnflattenFn(fi)
		if err := run(f); err != nil {
			return err
		}
		return fp.FlattenFnInto(fi, f)
	}
}

// flatPassList mirrors passList stage for stage on the flat form. The hot
// stages — clean, unroll's normalize/clean tail, coalesce, schedule — run
// natively on the arrays; licm, strength-reduce, and regalloc bridge through
// the per-function graph round trip. Stage names, ordering, staging, and
// OnSuccess commit semantics are identical to the graph list, so telemetry
// spans, remarks, and incident reports read the same whichever form ran.
func (p *Program) flatPassList(cfg Config) []pipeline.FlatPass {
	passes := []pipeline.FlatPass{
		{Name: "clean", Run: func(fp *rtl.FlatProgram, fi int) error {
			opt.FlatClean(fp, fi)
			opt.FlatThreadJumps(fp, fi)
			return nil
		}},
		{Name: "licm", Run: bridgeFlat(func(f *rtl.Fn) error {
			runLICM(f)
			return nil
		})},
		{Name: "strength-reduce", Run: bridgeFlat(func(f *rtl.Fn) error {
			runStrengthReduce(f, cfg.emitter())
			return nil
		})},
	}
	if cfg.Unroll {
		var staged map[string]int
		passes = append(passes, pipeline.FlatPass{
			Name: "unroll",
			Run: func(fp *rtl.FlatProgram, fi int) error {
				// The replication machinery still works on the graph; the
				// normalize/clean tail runs natively on the flattened result.
				f := fp.UnflattenFn(fi)
				staged = runUnrollLoops(cfg, f)
				if err := fp.FlattenFnInto(fi, f); err != nil {
					return err
				}
				opt.FlatNormalizeAddresses(fp, fi)
				opt.FlatClean(fp, fi)
				return nil
			},
			OnSuccess: func() {
				for name, factor := range staged {
					p.Unrolled[name] = factor
				}
			},
		})
	}
	if cfg.Coalesce.Loads || cfg.Coalesce.Stores {
		var staged []core.LoopReport
		passes = append(passes, pipeline.FlatPass{
			Name: "coalesce",
			Run: func(fp *rtl.FlatProgram, fi int) error {
				staged = core.CoalesceMemoryAccessesFlat(fp, fi, cfg.Machine, cfg.Coalesce, cfg.emitter())
				opt.FlatClean(fp, fi)
				return nil
			},
			OnSuccess: func() { p.Reports = append(p.Reports, staged...) },
		})
	}
	if cfg.Schedule {
		passes = append(passes, pipeline.FlatPass{Name: "schedule", Run: func(fp *rtl.FlatProgram, fi int) error {
			sched.ScheduleFlatFn(fp, fi, cfg.Machine)
			return nil
		}})
	}
	if cfg.Registers > 0 {
		passes = append(passes, pipeline.FlatPass{Name: "regalloc", Run: bridgeFlat(func(f *rtl.Fn) error {
			_, err := regalloc.Run(f, cfg.Registers)
			return err
		})})
	}
	return passes
}

// Passes returns the names of the pipeline stages cfg would run, in order.
func Passes(cfg Config) []string {
	p := newProgram(rtl.NewProgram(), cfg.Machine)
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	var names []string
	for _, ps := range p.passList(cfg) {
		names = append(names, ps.Name)
	}
	return names
}

// Bisect binary-searches the optimization pipeline for the first pass that
// breaks function name, in the style of LLVM's -opt-bisect-limit. rp must
// be the *unoptimized* RTL program (front-end output, or Optimize: false);
// each probe reruns a prefix of the pass list on a fresh clone of the
// function and applies bad — typically DifferentialPredicate, which
// compares simulator behaviour against the unoptimized build. The WrapPass
// hook is honoured, so injected faults are attributed like real pass bugs.
func Bisect(rp *rtl.Program, name string, cfg Config, bad pipeline.Predicate) (pipeline.BisectResult, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	orig, ok := rp.Lookup(name)
	if !ok {
		return pipeline.BisectResult{}, fmt.Errorf("no function %q", name)
	}
	scratch := newProgram(rp, cfg.Machine)
	passes := scratch.passList(cfg)
	if cfg.WrapPass != nil {
		for i := range passes {
			passes[i] = cfg.WrapPass(passes[i])
		}
	}
	return pipeline.Bisect(func() *rtl.Fn { return orig.Clone() }, passes, bad)
}

// DifferentialPredicate builds a bisection predicate that flags behavioural
// divergence: it fingerprints the unoptimized program's simulator behaviour
// on the given argument sets, then judges a candidate function by running
// it in place of the original within the same program. Verifier rejections
// and simulator traps also count as failures.
func DifferentialPredicate(rp *rtl.Program, name string, cfg Config, memBytes int, argSets [][]int64) (pipeline.Predicate, error) {
	if cfg.Machine == nil {
		cfg.Machine = machine.Alpha()
	}
	want, err := pipeline.Behavior(rp, cfg.Machine, memBytes, name, argSets)
	if err != nil {
		return nil, fmt.Errorf("reference run: %w", err)
	}
	return func(f *rtl.Fn) error {
		if err := f.Verify(); err != nil {
			return err
		}
		fns := make([]*rtl.Fn, len(rp.Fns))
		for i, fn := range rp.Fns {
			if fn.Name == name {
				fns[i] = f
			} else {
				fns[i] = fn
			}
		}
		cand := rtl.NewProgram(fns...)
		cand.Globals = rp.Globals
		got, err := pipeline.Behavior(cand, cfg.Machine, memBytes, name, argSets)
		if err != nil {
			return err
		}
		if got != want {
			return fmt.Errorf("behaviour diverges from the unoptimized build (fingerprint %s, want %s)", got, want)
		}
		return nil
	}, nil
}

// ensurePreheaders materializes preheaders for every natural loop so later
// analyses see a stable shape.
func ensurePreheaders(f *rtl.Fn) {
	g := cfg2(f)
	for _, l := range g.FindLoops() {
		g.EnsurePreheader(l)
	}
}

func cfg2(f *rtl.Fn) *cfg.Graph { return cfg.New(f) }

// NewSim builds a simulator for the compiled program with memBytes of RAM.
// Programs carrying a flat image (cache hits, FromFlat) predecode from it
// directly — no pointer-graph walk; the decode is bit-identical to the
// graph path, including instruction-cache geometry. When the program was
// compiled with a telemetry recorder, the simulator publishes its dynamic
// counters into the same metrics registry.
func (p *Program) NewSim(memBytes int) *sim.Sim {
	var s *sim.Sim
	if p.Flat != nil {
		s = sim.NewFlat(p.Flat, p.Machine, memBytes)
	} else {
		s = sim.New(p.RTL, p.Machine, memBytes)
	}
	if p.Telemetry != nil {
		s.AttachMetrics(p.Telemetry.Metrics())
	}
	return s
}

// Fn returns the named compiled function for inspection.
func (p *Program) Fn(name string) (*rtl.Fn, bool) { return p.RTL.Lookup(name) }
