// Quickstart: compile one kernel twice — with and without memory access
// coalescing — run both on the simulated DEC Alpha, and compare cycles and
// memory references. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"macc"
	"macc/internal/machine"
	"macc/internal/rtl"
)

const src = `
int dotproduct(short a[], short b[], int n) {
	int c, i;
	c = 0;
	for (i = 0; i < n; i++)
		c += a[i] * b[i];
	return c;
}
`

func main() {
	const n = 10000
	a := make([]int64, n)
	b := make([]int64, n)
	for i := range a {
		a[i] = int64(i%251 - 125)
		b[i] = int64(i%241 - 120)
	}

	run := func(name string, cfg macc.Config) (int64, int64, int64) {
		prog, err := macc.Compile(src, cfg)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		s := prog.NewSim(1 << 20)
		const aAddr, bAddr = 4096, 4096 + 2*n + 64
		s.WriteInts(aAddr, rtl.W2, a)
		s.WriteInts(bAddr, rtl.W2, b)
		res, err := s.Run("dotproduct", aAddr, bAddr, n)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-12s ret=%-12d cycles=%-9d memrefs=%d\n",
			name, res.Ret, res.Cycles, res.MemRefs())
		return res.Ret, res.Cycles, res.MemRefs()
	}

	baseline := macc.BaselineConfig(machine.Alpha())
	r1, c1, m1 := run("baseline", baseline)
	r2, c2, m2 := run("coalesced", macc.DefaultConfig())

	if r1 != r2 {
		log.Fatal("results differ — that would be a compiler bug")
	}
	fmt.Printf("\nspeedup: %.1f%% fewer cycles, %.1f%% fewer memory references\n",
		100*float64(c1-c2)/float64(c1), 100*float64(m1-m2)/float64(m1))
	fmt.Println("(the paper's Figure 1 loop: 2n narrow loads become n/4 wide loads)")
}
