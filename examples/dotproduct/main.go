// This example reproduces Figure 1 of the paper: the dot-product source
// (1a), the optimized rolled RTL (1b), and the unrolled loop with coalesced
// memory references plus its run-time checks (1c / Figure 5). It prints the
// RTL at each step and annotates what the coalescer did.
package main

import (
	"fmt"
	"log"
	"strings"

	"macc"
	"macc/internal/core"
	"macc/internal/machine"
	"macc/internal/rtl"
)

const src = `
int dotproduct(short a[], short b[], int n) {
	int c, i;
	c = 0;
	for (i = 0; i < n; i++)
		c += a[i] * b[i];
	return c;
}
`

func main() {
	fmt.Println("=== Figure 1a: C source ===")
	fmt.Println(strings.TrimSpace(src))
	fmt.Println()

	// Figure 1b: the rolled loop after the classic optimizations. Note the
	// pointer induction variables and the pointer-compare termination test
	// that replaced the counter (the paper's lines 6-9 compute the same
	// a+n*2 bound).
	plain, err := macc.Compile(src, macc.Config{Machine: machine.Alpha(), Optimize: true})
	if err != nil {
		log.Fatal(err)
	}
	f, _ := plain.Fn("dotproduct")
	fmt.Println("=== Figure 1b: optimized rolled loop (vpo-style RTL) ===")
	fmt.Print(f)
	fmt.Println()

	// Figure 1c: unroll by four (64-bit word / 16-bit elements) and
	// coalesce. The two shortword loads per iteration become two quadword
	// loads per four iterations plus extracts.
	cfg := macc.Config{
		Machine:  machine.Alpha(),
		Optimize: true,
		Unroll:   true,
		Coalesce: core.Options{Loads: true, Stores: true},
	}
	full, err := macc.Compile(src, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fc, _ := full.Fn("dotproduct")
	fmt.Println("=== Figure 1c: unrolled loop with coalesced memory references ===")
	fmt.Print(fc)
	fmt.Println()

	for _, r := range full.Reports {
		if !r.Applied {
			continue
		}
		fmt.Printf("coalescer: replaced %d narrow loads with %d wide loads (schedule estimate %d -> %d cycles/iteration)\n",
			r.NarrowLoads, r.WideLoads, r.CyclesOriginal, r.CyclesCoalesced)
		fmt.Printf("coalescer: %d alignment checks and %d alias pairs guard the fast loop (%d preheader instructions — the paper reports 10-15)\n",
			r.AlignmentChecks, r.AliasCheckPairs, r.CheckInstrs)
	}
	fmt.Println()

	// Show the dynamic effect, including what the paper's Figure 1
	// promises: 2n references become n/2.
	const n = 4096
	demo := func(p *macc.Program, label string) {
		s := p.NewSim(1 << 20)
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i], b[i] = int64(i%103), int64(i%97)
		}
		s.WriteInts(4096, rtl.W2, a)
		s.WriteInts(4096+2*n+64, rtl.W2, b)
		res, err := s.Run("dotproduct", 4096, 4096+2*n+64, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s memrefs=%-6d (per element: %.2f) cycles=%d\n",
			label, res.MemRefs(), float64(res.MemRefs())/n, res.Cycles)
	}
	demo(plain, "rolled")
	demo(full, "coalesced")
	fmt.Println("\nthe rolled loop performs 2 references per element; the coalesced loop 1/2")
}
