// A realistic multi-stage image pipeline — the workload class the paper's
// introduction motivates. One translation unit defines three signal
// processing stages (edge convolution, frame blend, mirror); the pipeline
// compiles it for each of the paper's three machines and reports how memory
// access coalescing behaves on each: a large win on the Alpha, a loads-only
// win on the 88100, and a loss on the 68030.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"macc"
	"macc/internal/core"
	"macc/internal/machine"
)

const pipelineSrc = `
unsigned char gamma_lut[16] = {0, 4, 9, 14, 20, 27, 35, 44, 54, 66, 80, 96, 115, 137, 163, 192};

void gamma(unsigned char *img, int n) {
	int i;
	for (i = 0; i < n; i++)
		img[i] = gamma_lut[img[i] >> 4];
}

void edges(unsigned char *src, unsigned char *dst, int width, int height) {
	int r, c;
	for (r = 1; r < height - 1; r++) {
		for (c = 1; c < width - 1; c++) {
			int sum = 0;
			sum += src[(r-1)*width + (c-1)];
			sum += src[(r-1)*width + c] * 2;
			sum += src[(r-1)*width + (c+1)];
			sum -= src[(r+1)*width + (c-1)];
			sum -= src[(r+1)*width + c] * 2;
			sum -= src[(r+1)*width + (c+1)];
			dst[r*width + (c-1)] = (sum >> 2) & 255;
		}
	}
}

void blend(unsigned char *a, unsigned char *b, unsigned char *out, int n) {
	int i;
	for (i = 0; i < n; i++)
		out[i] = (a[i] + b[i]) >> 1;
}

void mirror(unsigned char *src, unsigned char *dst, int n) {
	int i;
	for (i = 0; i < n; i++)
		dst[i] = src[n-1-i];
}

void pipeline(unsigned char *frame, unsigned char *prev,
              unsigned char *tmp, unsigned char *out, int width, int height) {
	gamma(frame, width*height);
	edges(frame, tmp, width, height);
	blend(tmp, prev, tmp, width*height);
	mirror(tmp, out, width*height);
}
`

func main() {
	const width, height = 256, 128
	const n = width * height
	rng := rand.New(rand.NewSource(7))
	frame := make([]byte, n)
	prev := make([]byte, n)
	rng.Read(frame)
	rng.Read(prev)

	layout := []int64{4096, 4096 + n + 64, 4096 + 2*(n+64), 4096 + 3*(n+64)}

	fmt.Printf("%-8s %-10s %12s %12s %10s\n", "machine", "coalesce", "cycles", "memrefs", "vs-off")
	for _, m := range machine.All() {
		var offCycles int64
		for _, mode := range []string{"off", "loads", "both"} {
			cfg := macc.BaselineConfig(m)
			switch mode {
			case "loads":
				cfg.Coalesce = core.Options{Loads: true}
			case "both":
				cfg.Coalesce = core.Options{Loads: true, Stores: true}
			}
			prog, err := macc.Compile(pipelineSrc, cfg)
			if err != nil {
				log.Fatal(err)
			}
			s := prog.NewSim(1 << 20)
			s.WriteBytes(layout[0], frame)
			s.WriteBytes(layout[1], prev)
			res, err := s.Run("pipeline", layout[0], layout[1], layout[2], layout[3],
				width, height)
			if err != nil {
				log.Fatal(err)
			}
			delta := ""
			if mode == "off" {
				offCycles = res.Cycles
			} else {
				delta = fmt.Sprintf("%+.1f%%", 100*float64(offCycles-res.Cycles)/float64(offCycles))
			}
			fmt.Printf("%-8s %-10s %12d %12d %10s\n", m.Name, mode, res.Cycles, res.MemRefs(), delta)
		}
		fmt.Println()
	}
	fmt.Println("positive percentages are speedups over the uncoalesced compile")
	fmt.Println("(alpha: big win; m88100: loads-only wins, stores lose; m68030: always slower)")
}
