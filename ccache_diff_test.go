package macc_test

// Differential tests for the compile cache: a cached compile must be
// observably identical to a cold one — byte-identical printed RTL and the
// same simulated behaviour — for every paper kernel under several
// configurations, for random rtlgen programs through CompileRTL, and for
// concurrent singleflight callers racing one cold compile.

import (
	"fmt"
	"sync"
	"testing"

	"macc"
	"macc/internal/bench"
	"macc/internal/ccache"
	"macc/internal/machine"
	"macc/internal/pipeline"
	"macc/internal/rtl"
	"macc/internal/rtlgen"
	"macc/internal/sim"
)

// diffConfigs is the configuration matrix the differential tests sweep.
func diffConfigs() map[string]macc.Config {
	alpha := machine.Alpha()
	m88k, _ := machine.ByName("m88100")
	noSched := macc.DefaultConfig()
	noSched.Schedule = false
	loadsOnly := macc.DefaultConfig()
	loadsOnly.Coalesce.Stores = false
	m88kCfg := macc.DefaultConfig()
	m88kCfg.Machine = m88k
	return map[string]macc.Config{
		"default":    macc.DefaultConfig(),
		"baseline":   macc.BaselineConfig(alpha),
		"nosched":    noSched,
		"loads-only": loadsOnly,
		"m88100":     m88kCfg,
	}
}

// runBench executes one paper benchmark and returns its simulator verdict.
func runBench(t *testing.T, bm bench.Benchmark, p *macc.Program) sim.Result {
	t.Helper()
	res, err := bm.Run(p, bench.SmallWorkload())
	if err != nil {
		t.Fatalf("%s: run: %v", bm.Name, err)
	}
	return res
}

// TestCacheDifferentialKernels sweeps every paper kernel against every
// config variant: the warm compile must print byte-identical RTL and
// simulate to the same cycle and memory-reference counts as the cold one.
// The cache runs with a disk tier, so a second cache instance over the
// same directory additionally pushes every entry through the disk
// round-trip (serialize, reparse) before comparison.
func TestCacheDifferentialKernels(t *testing.T) {
	dir := t.TempDir()
	for cfgName, cfg := range diffConfigs() {
		cfg := cfg
		t.Run(cfgName, func(t *testing.T) {
			warmCache := ccache.New(ccache.Options{Dir: dir})
			diskCache := ccache.New(ccache.Options{Dir: dir})
			for _, bm := range append(bench.Benchmarks(), bench.DotProduct()) {
				cold, err := macc.Compile(bm.Src, cfg)
				if err != nil {
					t.Fatalf("%s: cold: %v", bm.Name, err)
				}
				if cold.Diagnostics.Degraded() {
					t.Fatalf("%s: cold compile degraded", bm.Name)
				}

				cfgWarm := cfg
				cfgWarm.Cache = warmCache
				if _, err := macc.Compile(bm.Src, cfgWarm); err != nil {
					t.Fatalf("%s: warmup: %v", bm.Name, err)
				}
				warm, err := macc.Compile(bm.Src, cfgWarm)
				if err != nil {
					t.Fatalf("%s: warm: %v", bm.Name, err)
				}
				if !warm.Cached {
					t.Fatalf("%s: warm compile missed the cache", bm.Name)
				}

				// A fresh cache over the same directory forces the disk
				// tier: serialize through the printer, reparse on load.
				cfgDisk := cfg
				cfgDisk.Cache = diskCache
				disk, err := macc.Compile(bm.Src, cfgDisk)
				if err != nil {
					t.Fatalf("%s: disk: %v", bm.Name, err)
				}
				if !disk.Cached {
					t.Fatalf("%s: disk-tier compile missed the cache", bm.Name)
				}

				coldRTL := cold.RTL.String()
				for tier, p := range map[string]*macc.Program{"mem": warm, "disk": disk} {
					if got := p.RTL.String(); got != coldRTL {
						t.Fatalf("%s: %s-tier RTL differs from cold:\n%s\nvs\n%s",
							bm.Name, tier, got, coldRTL)
					}
					coldRes, hitRes := runBench(t, bm, cold), runBench(t, bm, p)
					if coldRes.Ret != hitRes.Ret ||
						coldRes.Cycles != hitRes.Cycles ||
						coldRes.MemRefs() != hitRes.MemRefs() {
						t.Fatalf("%s: %s-tier behaviour differs: ret %d/%d cycles %d/%d refs %d/%d",
							bm.Name, tier, coldRes.Ret, hitRes.Ret,
							coldRes.Cycles, hitRes.Cycles,
							coldRes.MemRefs(), hitRes.MemRefs())
					}
				}
			}
		})
	}
}

// TestCacheDifferentialRandomRTL drives CompileRTL's cache path with random
// generated programs and compares printed RTL plus the pipeline's behaviour
// fingerprint (return value and final memory over several argument sets).
// Every warm hit travels the flat path — Flatten on store, a shared
// FlatProgram snapshot on hit — so the sweep doubles as the corpus-scale
// differential for the flat IR.
func TestCacheDifferentialRandomRTL(t *testing.T) {
	seeds := int64(200)
	if testing.Short() {
		seeds = 25
	}
	m := machine.Alpha()
	argSets := [][]int64{{0, 0, 0}, {1, 2, 3}, {511, 1023, 7}}
	cache := ccache.New(ccache.Options{Dir: t.TempDir()})
	for seed := int64(1); seed <= seeds; seed++ {
		fn, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		rp := &rtl.Program{Fns: []*rtl.Fn{fn}}
		cfg := macc.DefaultConfig()
		cfg.Machine = m

		cold, err := macc.CompileRTL(rp, cfg)
		if err != nil {
			t.Fatalf("seed %d: cold: %v", seed, err)
		}

		cfg.Cache = cache
		// rp was optimized in place by the cold compile? CompileRTL
		// clones internally if needed; regenerate to be safe.
		fn2, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rp2 := &rtl.Program{Fns: []*rtl.Fn{fn2}}
		if _, err := macc.CompileRTL(rp2, cfg); err != nil {
			t.Fatalf("seed %d: warmup: %v", seed, err)
		}
		fn3, err := rtlgen.Generate(seed, rtlgen.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		warm, err := macc.CompileRTL(&rtl.Program{Fns: []*rtl.Fn{fn3}}, cfg)
		if err != nil {
			t.Fatalf("seed %d: warm: %v", seed, err)
		}
		if !warm.Cached {
			t.Fatalf("seed %d: warm CompileRTL missed the cache", seed)
		}

		if got, want := warm.RTL.String(), cold.RTL.String(); got != want {
			t.Fatalf("seed %d: cached RTL differs:\n%s\nvs\n%s", seed, got, want)
		}
		coldFP, err := pipeline.Behavior(cold.RTL, m, rtlgen.MemWindow*2, "f", argSets)
		if err != nil {
			t.Fatalf("seed %d: cold behaviour: %v", seed, err)
		}
		warmFP, err := pipeline.Behavior(warm.RTL, m, rtlgen.MemWindow*2, "f", argSets)
		if err != nil {
			t.Fatalf("seed %d: warm behaviour: %v", seed, err)
		}
		if coldFP != warmFP {
			t.Fatalf("seed %d: behaviour fingerprint differs:\n%s\nvs\n%s", seed, coldFP, warmFP)
		}
	}
}

// TestCacheConcurrentSingleflightDifferential races many concurrent callers
// per source through one shared cache under -race: exactly the singleflight
// situation maccd faces. Every caller must get RTL identical to an
// uncached reference compile.
func TestCacheConcurrentSingleflightDifferential(t *testing.T) {
	cache := ccache.New(ccache.Options{})
	cfg := macc.DefaultConfig()

	benches := append(bench.Benchmarks(), bench.DotProduct())
	want := make(map[string]string, len(benches))
	for _, bm := range benches {
		p, err := macc.Compile(bm.Src, cfg)
		if err != nil {
			t.Fatalf("%s: reference compile: %v", bm.Name, err)
		}
		want[bm.Name] = p.RTL.String()
	}

	cfg.Cache = cache
	const callers = 6
	var wg sync.WaitGroup
	errc := make(chan error, callers*len(benches))
	for _, bm := range benches {
		bm := bm
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				p, err := macc.Compile(bm.Src, cfg)
				if err != nil {
					errc <- fmt.Errorf("%s: %v", bm.Name, err)
					return
				}
				if got := p.RTL.String(); got != want[bm.Name] {
					errc <- fmt.Errorf("%s: concurrent compile printed different RTL", bm.Name)
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
